// Unit + property tests for the locality-preserving hash (Algorithm 2)
// and the cuboid/prefix machinery that query routing builds on.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "lph/lph.hpp"

namespace lmk {
namespace {

Boundary unit_box(std::size_t dims) { return uniform_boundary(dims, 0, 1); }

TEST(LphHash, OneDimensionIsScaledValue) {
  Boundary b = unit_box(1);
  // In 1-D the key is just the binary expansion of the coordinate.
  EXPECT_EQ(lph_hash({0.0}, b), 0u);
  EXPECT_EQ(lph_hash({0.75}, b) >> 62, 0b10u);
  // 0.5 sits exactly on the first split plane: lower half, bit 0.
  EXPECT_EQ(get_bit(lph_hash({0.5}, b), 1), 0);
  EXPECT_EQ(get_bit(lph_hash({0.500001}, b), 1), 1);
}

TEST(LphHash, TwoDimensionalQuadrants) {
  Boundary b = unit_box(2);
  // First bit: dim0 split; second bit: dim1 split.
  Id k = lph_hash({0.75, 0.25}, b);
  EXPECT_EQ(get_bit(k, 1), 1);
  EXPECT_EQ(get_bit(k, 2), 0);
  k = lph_hash({0.25, 0.75}, b);
  EXPECT_EQ(get_bit(k, 1), 0);
  EXPECT_EQ(get_bit(k, 2), 1);
}

TEST(LphHash, ClampsOutOfRangePoints) {
  Boundary b = unit_box(2);
  EXPECT_EQ(lph_hash({-5.0, -5.0}, b), lph_hash({0.0, 0.0}, b));
  EXPECT_EQ(lph_hash({9.0, 9.0}, b), lph_hash({1.0, 1.0}, b));
}

TEST(LphHash, MonotoneInFirstDimension) {
  // Larger dim-0 coordinate can only raise the bits dim 0 controls; with
  // all other coordinates equal, the key is monotone.
  Boundary b = unit_box(3);
  Rng rng(1);
  for (int t = 0; t < 200; ++t) {
    double y = rng.uniform(), z = rng.uniform();
    double x1 = rng.uniform(), x2 = rng.uniform();
    if (x1 > x2) std::swap(x1, x2);
    EXPECT_LE(lph_hash({x1, y, z}, b), lph_hash({x2, y, z}, b));
  }
}

TEST(LphHash, LocalityNearbyPointsShareLongPrefixes) {
  Boundary b = unit_box(2);
  Id a = lph_hash({0.3000001, 0.70001}, b);
  Id c = lph_hash({0.3000002, 0.70002}, b);
  Id far = lph_hash({0.9, 0.1}, b);
  EXPECT_GT(common_prefix_length(a, c), common_prefix_length(a, far));
  EXPECT_GE(common_prefix_length(a, c), 20);
}

TEST(LphHash, PointInItsOwnLeafCuboid) {
  Boundary b = unit_box(3);
  Rng rng(2);
  for (int t = 0; t < 200; ++t) {
    IndexPoint p{rng.uniform(), rng.uniform(), rng.uniform()};
    Id key = lph_hash(p, b);
    // Every prefix of the key identifies a cuboid containing the point
    // (up to the closed-boundary convention on split planes).
    for (int len : {1, 2, 5, 13, 40}) {
      Region cub = cuboid_region(Prefix{prefix(key, len), len}, b);
      for (std::size_t d = 0; d < 3; ++d) {
        EXPECT_LE(cub.ranges[d].lo - 1e-12, p[d]);
        EXPECT_GE(cub.ranges[d].hi + 1e-12, p[d]);
      }
    }
  }
}

TEST(CuboidRegion, RootIsBoundary) {
  Boundary b = uniform_boundary(2, -3, 7);
  Region r = cuboid_region(Prefix{0, 0}, b);
  for (const auto& iv : r.ranges) {
    EXPECT_DOUBLE_EQ(iv.lo, -3);
    EXPECT_DOUBLE_EQ(iv.hi, 7);
  }
}

TEST(CuboidRegion, AlternatesDimensions) {
  Boundary b = unit_box(2);
  // Prefix "1" = upper half of dim 0.
  Region r = cuboid_region(Prefix{set_bit(0, 1), 1}, b);
  EXPECT_DOUBLE_EQ(r.ranges[0].lo, 0.5);
  EXPECT_DOUBLE_EQ(r.ranges[0].hi, 1.0);
  EXPECT_DOUBLE_EQ(r.ranges[1].lo, 0.0);
  // Prefix "10" = upper dim0, lower dim1.
  r = cuboid_region(Prefix{set_bit(0, 1), 2}, b);
  EXPECT_DOUBLE_EQ(r.ranges[1].hi, 0.5);
  // Prefix "101" = and then lower... third split is dim0 again: bit 1.
  Id k = set_bit(set_bit(0, 1), 3);
  r = cuboid_region(Prefix{k, 3}, b);
  EXPECT_DOUBLE_EQ(r.ranges[0].lo, 0.75);
  EXPECT_DOUBLE_EQ(r.ranges[0].hi, 1.0);
}

TEST(CuboidRegion, SiblingsPartitionParent) {
  Boundary b = unit_box(3);
  Rng rng(3);
  for (int t = 0; t < 100; ++t) {
    int len = 1 + static_cast<int>(rng.below(20));
    Id key = prefix(rng.next(), len);
    Region parent = cuboid_region(Prefix{key, len}, b);
    Region low = cuboid_region(Prefix{key, len + 1}, b);
    Region high = cuboid_region(Prefix{set_bit(key, len + 1), len + 1}, b);
    std::size_t j = static_cast<std::size_t>(len) % 3;
    double mid = (parent.ranges[j].lo + parent.ranges[j].hi) / 2;
    EXPECT_DOUBLE_EQ(low.ranges[j].hi, mid);
    EXPECT_DOUBLE_EQ(high.ranges[j].lo, mid);
    for (std::size_t d = 0; d < 3; ++d) {
      if (d == j) continue;
      EXPECT_DOUBLE_EQ(low.ranges[d].lo, parent.ranges[d].lo);
      EXPECT_DOUBLE_EQ(high.ranges[d].hi, parent.ranges[d].hi);
    }
  }
}

TEST(EnclosingPrefix, WholeSpaceHasEmptyPrefix) {
  Boundary b = unit_box(2);
  Region r{{Interval{0, 1}, Interval{0, 1}}};
  Prefix p = enclosing_prefix(r, b);
  EXPECT_EQ(p.length, 0);
}

TEST(EnclosingPrefix, StraddlingFirstPlaneStaysRoot) {
  Boundary b = unit_box(2);
  Region r{{Interval{0.4, 0.6}, Interval{0.1, 0.2}}};
  EXPECT_EQ(enclosing_prefix(r, b).length, 0);
}

TEST(EnclosingPrefix, QuadrantRegion) {
  Boundary b = unit_box(2);
  Region r{{Interval{0.6, 0.9}, Interval{0.1, 0.4}}};
  Prefix p = enclosing_prefix(r, b);
  EXPECT_GE(p.length, 2);
  EXPECT_EQ(get_bit(p.key, 1), 1);
  EXPECT_EQ(get_bit(p.key, 2), 0);
}

TEST(EnclosingPrefix, PaperFigure1Example) {
  // Figure 1(a): 2-D space split 3 times; the rectangle "011" (lower
  // half of dim0, upper half of dim1, upper quarter... third split is on
  // dim0 again) holds the query. Construct a region inside cuboid 011
  // and check the prefix.
  Boundary b = unit_box(2);
  Region cub = cuboid_region(Prefix{0b011ull << 61, 3}, b);
  Region query{{Interval{cub.ranges[0].lo + 0.01, cub.ranges[0].hi - 0.01},
                Interval{cub.ranges[1].lo + 0.01, cub.ranges[1].hi - 0.01}}};
  Prefix p = enclosing_prefix(query, b);
  EXPECT_GE(p.length, 3);
  EXPECT_EQ(prefix(p.key, 3), 0b011ull << 61);
}

TEST(EnclosingPrefix, RegionAlwaysInsideItsCuboid) {
  Boundary b = unit_box(3);
  Rng rng(4);
  for (int t = 0; t < 300; ++t) {
    Region r;
    for (int d = 0; d < 3; ++d) {
      double lo = rng.uniform(), hi = rng.uniform();
      if (lo > hi) std::swap(lo, hi);
      r.ranges.push_back(Interval{lo, hi});
    }
    Prefix p = enclosing_prefix(r, b);
    Region cub = cuboid_region(p, b);
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(r.ranges[d].lo, cub.ranges[d].lo - 1e-12);
      EXPECT_LE(r.ranges[d].hi, cub.ranges[d].hi + 1e-12);
    }
    // Maximality: splitting once more must not contain the region, or
    // the prefix is a leaf.
    if (p.length < kIdBits) {
      int dim = 0;
      double mid = split_plane(p.key, p.length + 1, b, &dim);
      const Interval& iv = r.ranges[static_cast<std::size_t>(dim)];
      EXPECT_TRUE(iv.lo <= mid && iv.hi > mid)
          << "region fits a child but prefix stopped early";
    }
  }
}

TEST(SplitPlane, ReplaysPriorSplits) {
  Boundary b = unit_box(2);
  // Prefix "1" fixed (dim0 upper half); division 3 splits dim0 again:
  // plane at 0.75.
  int dim = -1;
  double mid = split_plane(set_bit(0, 1), 3, b, &dim);
  EXPECT_EQ(dim, 0);
  EXPECT_DOUBLE_EQ(mid, 0.75);
  // Division 2 splits dim1 for the first time: plane at 0.5.
  mid = split_plane(set_bit(0, 1), 2, b, &dim);
  EXPECT_EQ(dim, 1);
  EXPECT_DOUBLE_EQ(mid, 0.5);
}

TEST(SplitPlane, MatchesCuboidMidpoint) {
  Boundary b = unit_box(3);
  Rng rng(5);
  for (int t = 0; t < 200; ++t) {
    int len = static_cast<int>(rng.below(30));
    Id key = prefix(rng.next(), len);
    int dim = -1;
    double mid = split_plane(key, len + 1, b, &dim);
    Region cub = cuboid_region(Prefix{key, len}, b);
    const Interval& iv = cub.ranges[static_cast<std::size_t>(dim)];
    EXPECT_DOUBLE_EQ(mid, (iv.lo + iv.hi) / 2);
    EXPECT_EQ(dim, len % 3);
  }
}

TEST(ClampRegion, ClipsAndSnapsOutsideRegionsToEdge) {
  Boundary b = unit_box(2);
  Region inside{{Interval{-1, 0.5}, Interval{0.2, 2.0}}};
  clamp_region(inside, b);
  EXPECT_DOUBLE_EQ(inside.ranges[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(inside.ranges[1].hi, 1.0);
  // Entirely outside: snaps to the nearest edge (where out-of-boundary
  // entries are stored) instead of becoming an empty query.
  Region outside{{Interval{2, 3}, Interval{0, 1}}};
  clamp_region(outside, b);
  EXPECT_DOUBLE_EQ(outside.ranges[0].lo, 1.0);
  EXPECT_DOUBLE_EQ(outside.ranges[0].hi, 1.0);
}

TEST(QueryRegion, CubeAroundCenter) {
  Region r = query_region({0.5, 0.5}, 0.1);
  EXPECT_DOUBLE_EQ(r.ranges[0].lo, 0.4);
  EXPECT_DOUBLE_EQ(r.ranges[0].hi, 0.6);
  EXPECT_DOUBLE_EQ(r.ranges[1].lo, 0.4);
}

TEST(RegionIntersectsCuboid, BasicOverlap) {
  Boundary b = unit_box(2);
  Region r{{Interval{0.4, 0.6}, Interval{0.4, 0.6}}};
  EXPECT_TRUE(region_intersects_cuboid(r, Prefix{0, 1}, b));
  EXPECT_TRUE(region_intersects_cuboid(r, Prefix{set_bit(0, 1), 1}, b));
  // Cuboid "11": dim0 upper, dim1 upper — touches at the corner.
  Id k = set_bit(set_bit(0, 1), 2);
  EXPECT_TRUE(region_intersects_cuboid(r, Prefix{k, 2}, b));
  Region far{{Interval{0.0, 0.2}, Interval{0.0, 0.2}}};
  EXPECT_FALSE(region_intersects_cuboid(far, Prefix{k, 2}, b));
}

// Property: hashing a uniform sample and grouping by a short prefix
// spreads points across all cuboids of that depth (no systematic holes).
TEST(LphHash, UniformSampleCoversShallowCuboids) {
  Boundary b = unit_box(2);
  Rng rng(6);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 4000; ++i) {
    IndexPoint p{rng.uniform(), rng.uniform()};
    Id key = lph_hash(p, b);
    counts[key >> 60] += 1;  // depth-4 cuboid index
  }
  for (int c : counts) EXPECT_GT(c, 100);
}

// Property: keys of points inside a cuboid's region hash into the
// cuboid's key span.
TEST(LphHash, RegionPointsHashIntoSpan) {
  Boundary b = unit_box(2);
  Rng rng(7);
  for (int t = 0; t < 100; ++t) {
    int len = 1 + static_cast<int>(rng.below(10));
    Id key = prefix(rng.next(), len);
    Prefix p{key, len};
    Region cub = cuboid_region(p, b);
    KeySpan span = prefix_span(key, len);
    for (int i = 0; i < 10; ++i) {
      IndexPoint pt;
      for (int d = 0; d < 2; ++d) {
        const Interval& iv = cub.ranges[static_cast<std::size_t>(d)];
        // Sample strictly inside to avoid the closed-plane convention.
        pt.push_back(iv.lo + (iv.hi - iv.lo) * rng.uniform(0.01, 0.99));
      }
      Id h = lph_hash(pt, b);
      EXPECT_GE(h, span.lo);
      EXPECT_LE(h, span.hi);
    }
  }
}

}  // namespace
}  // namespace lmk
