// Tests for the discrete-event simulator and the network layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "net/king_loader.hpp"
#include "net/latency_model.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace lmk {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(30, [&] { fired.push_back(3); });
  q.push(10, [&] { fired.push_back(1); });
  q.push(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop(nullptr)();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TieBreaksByInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.push(7, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop(nullptr)();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PopReportsTime) {
  EventQueue q;
  q.push(42, [] {});
  SimTime at = 0;
  q.pop(&at);
  EXPECT_EQ(at, 42);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_after(100, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule_after(10, [&] {
    times.push_back(sim.now());
    sim.schedule_after(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(10, [&] { ++fired; });
  sim.schedule_after(20, [&] { ++fired; });
  sim.schedule_after(30, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunWithLimitExecutesExactly) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) sim.schedule_after(i, [&] { ++fired; });
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.pending(), 6u);
}

TEST(Simulator, DrainDropsPending) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(5, [&] { ++fired; });
  sim.drain();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  sim.schedule_after(10, [] {});
  sim.run();
  SimTime seen = -1;
  sim.schedule_after(0, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 10);
}

// ----- latency models -----

TEST(ConstantLatency, SymmetricZeroDiagonal) {
  ConstantLatencyModel m(4, 10 * kMillisecond);
  EXPECT_EQ(m.latency(0, 0), 0);
  EXPECT_EQ(m.latency(1, 2), 10 * kMillisecond);
  EXPECT_EQ(m.latency(2, 1), 10 * kMillisecond);
  EXPECT_EQ(m.mean_rtt(), 20 * kMillisecond);
}

TEST(DelaySpace, HitsTargetMeanRtt) {
  DelaySpaceModel::Options opts;
  opts.hosts = 200;
  opts.target_mean_rtt = 180 * kMillisecond;
  opts.seed = 3;
  DelaySpaceModel m(opts);
  SimTime rtt = m.mean_rtt();
  EXPECT_NEAR(static_cast<double>(rtt), 180.0 * kMillisecond,
              2.0 * kMillisecond);
}

TEST(DelaySpace, SymmetricAndPositive) {
  DelaySpaceModel::Options opts;
  opts.hosts = 50;
  opts.seed = 4;
  DelaySpaceModel m(opts);
  for (HostId a = 0; a < 50; ++a) {
    for (HostId b = 0; b < 50; ++b) {
      EXPECT_EQ(m.latency(a, b), m.latency(b, a));
      if (a != b) {
        EXPECT_GT(m.latency(a, b), 0);
      }
    }
  }
}

TEST(DelaySpace, DeterministicForSeed) {
  DelaySpaceModel::Options opts;
  opts.hosts = 30;
  opts.seed = 5;
  DelaySpaceModel a(opts), b(opts);
  for (HostId i = 0; i < 30; ++i) {
    EXPECT_EQ(a.latency(0, i), b.latency(0, i));
  }
}

TEST(DelaySpace, LatencySpreadIsRealistic) {
  DelaySpaceModel::Options opts;
  opts.hosts = 300;
  opts.seed = 6;
  DelaySpaceModel m(opts);
  SimTime lo = m.latency(0, 1), hi = lo;
  for (HostId a = 0; a < 100; ++a) {
    for (HostId b = a + 1; b < 100; ++b) {
      lo = std::min(lo, m.latency(a, b));
      hi = std::max(hi, m.latency(a, b));
    }
  }
  EXPECT_LT(lo * 4, hi);  // near vs far hosts differ substantially
}

TEST(MatrixLatency, SymmetrizesInput) {
  std::vector<SimTime> m{0, 5, 9, 0};
  MatrixLatencyModel model(2, std::move(m));
  EXPECT_EQ(model.latency(0, 1), 9);
  EXPECT_EQ(model.latency(1, 0), 9);
  EXPECT_EQ(model.latency(0, 0), 0);
}

// ----- King-format matrix loader -----

TEST(KingLoader, ParsesMeasurementsAndHalvesRtt) {
  std::string error;
  auto model = parse_king_matrix("0 1 20000\n1 2 40000\n", 3, &error);
  ASSERT_NE(model, nullptr) << error;
  EXPECT_EQ(model->latency(0, 1), 10000);
  EXPECT_EQ(model->latency(1, 0), 10000);
  EXPECT_EQ(model->latency(1, 2), 20000);
  EXPECT_EQ(model->latency(0, 0), 0);
}

TEST(KingLoader, MissingPairsUseMedian) {
  std::string error;
  auto model = parse_king_matrix("0 1 10000\n1 2 30000\n2 3 50000\n", 4,
                                 &error);
  ASSERT_NE(model, nullptr) << error;
  // Unmeasured pair (0,3) falls back to the median one-way (15000).
  EXPECT_EQ(model->latency(0, 3), 15000);
}

TEST(KingLoader, IgnoresCommentsAndBlankLines) {
  std::string error;
  auto model = parse_king_matrix(
      "# header comment\n\n0 1 1000  # trailing\n\n", 2, &error);
  ASSERT_NE(model, nullptr) << error;
  EXPECT_EQ(model->latency(0, 1), 500);
}

TEST(KingLoader, RejectsMalformedInput) {
  std::string error;
  EXPECT_EQ(parse_king_matrix("0 1\n", 2, &error), nullptr);
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_EQ(parse_king_matrix("0 9 100\n", 2, &error), nullptr);
  EXPECT_EQ(parse_king_matrix("0 1 -5\n", 2, &error), nullptr);
  EXPECT_EQ(parse_king_matrix("", 2, &error), nullptr);
}

TEST(KingLoader, RejectsConflictingDuplicatePairs) {
  std::string error;
  // Same pair, different rtt: the last line must not silently win.
  EXPECT_EQ(parse_king_matrix("0 1 20000\n0 1 30000\n", 2, &error), nullptr);
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("conflicting duplicate"), std::string::npos) << error;
  // Symmetric restatement conflicts through the mirrored cell too.
  EXPECT_EQ(parse_king_matrix("0 1 20000\n1 0 30000\n", 2, &error), nullptr);
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(KingLoader, IdenticalDuplicatePairsAreTolerated) {
  std::string error;
  auto model = parse_king_matrix(
      "0 1 20000\n0 1 20000\n1 0 20000\n1 2 40000\n2 3 60000\n", 4, &error);
  ASSERT_NE(model, nullptr) << error;
  EXPECT_EQ(model->latency(0, 1), 10000);
  // The repeats must not be double-counted in the median fallback:
  // one-way samples are {10000, 20000, 30000}, median 20000.
  EXPECT_EQ(model->latency(0, 3), 20000);
}

TEST(KingLoader, RejectsOverflowingRtt) {
  std::string error;
  // 2^63 does not fit SimTime (int64); must be a clear per-line error,
  // not a garbage latency or a generic parse failure.
  EXPECT_EQ(parse_king_matrix("0 1 9223372036854775808\n", 2, &error),
            nullptr);
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("overflows SimTime"), std::string::npos) << error;
  // Max int64 itself still parses (and halves).
  auto model = parse_king_matrix("0 1 9223372036854775806\n", 2, &error);
  ASSERT_NE(model, nullptr) << error;
  EXPECT_EQ(model->latency(0, 1), 4611686018427387903LL);
}

TEST(KingLoader, RejectsNonNumericRtt) {
  std::string error;
  EXPECT_EQ(parse_king_matrix("0 1 12ms\n", 2, &error), nullptr);
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(KingLoader, LoadsFromFile) {
  const char* path = "/tmp/lmk_king_test.txt";
  {
    std::FILE* f = std::fopen(path, "w");
    ASSERT_NE(f, nullptr);
    std::fputs("0 1 2000\n0 2 4000\n1 2 6000\n", f);
    std::fclose(f);
  }
  std::string error;
  auto model = load_king_matrix(path, 3, &error);
  ASSERT_NE(model, nullptr) << error;
  EXPECT_EQ(model->latency(2, 1), 3000);
  EXPECT_EQ(load_king_matrix("/nonexistent/x", 3, &error), nullptr);
}

// ----- network -----

TEST(Network, DeliversAfterLatency) {
  Simulator sim;
  ConstantLatencyModel topo(3, 25 * kMillisecond);
  Network net(sim, topo);
  SimTime arrival = -1;
  net.send(0, 1, 100, [&] { arrival = sim.now(); });
  sim.run();
  EXPECT_EQ(arrival, 25 * kMillisecond);
}

TEST(Network, SelfSendIsImmediateButAsync) {
  Simulator sim;
  ConstantLatencyModel topo(2, 10);
  Network net(sim, topo);
  bool delivered = false;
  net.send(1, 1, 10, [&] { delivered = true; });
  EXPECT_FALSE(delivered);  // not synchronous
  sim.run();
  EXPECT_TRUE(delivered);
}

TEST(Network, CountsTraffic) {
  Simulator sim;
  ConstantLatencyModel topo(3, 5);
  Network net(sim, topo);
  TrafficCounter mine;
  net.send(0, 1, 100, [] {}, &mine);
  net.send(1, 2, 50, [] {});
  sim.run();
  EXPECT_EQ(net.total_traffic().messages, 2u);
  EXPECT_EQ(net.total_traffic().bytes, 150u);
  EXPECT_EQ(mine.messages, 1u);
  EXPECT_EQ(mine.bytes, 100u);
}

TEST(Network, ConcurrentMessagesKeepOrderPerLatency) {
  Simulator sim;
  std::vector<SimTime> m{0, 10, 30, 10, 0, 10, 30, 10, 0};
  MatrixLatencyModel topo(3, std::move(m));
  Network net(sim, topo);
  std::vector<int> order;
  net.send(0, 2, 1, [&] { order.push_back(2); });  // 30us away
  net.send(0, 1, 1, [&] { order.push_back(1); });  // 10us away
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ----- tie-order properties (audit/race-detector substrate) -----

// Property: under the FIFO policy, same-timestamp events always pop in
// insertion order, for any interleaving of pushes and pops — and the
// whole pop sequence is identical across re-runs. The model is a
// reference "pop the (time, seq)-minimum" simulation.
TEST(EventQueue, PropertyFifoTieOrderMatchesModelAcrossSeeds) {
  for (std::uint64_t seed : {1ull, 7ull, 1234ull, 0xdecafull}) {
    std::vector<int> first_run;
    for (int rerun = 0; rerun < 2; ++rerun) {
      Rng rng(seed);
      EventQueue q;
      std::vector<int> fired;
      std::vector<std::pair<SimTime, int>> model;  // (time, id) pending
      int next_id = 0;
      SimTime floor = 0;  // pops advance time; later pushes respect it
      for (int step = 0; step < 300; ++step) {
        bool push = q.empty() || rng.below(3) != 0;
        if (push) {
          // Few distinct timestamps on purpose: lots of ties.
          SimTime t = floor + static_cast<SimTime>(10 * rng.below(4));
          int id = next_id++;
          q.push(t, [&fired, id] { fired.push_back(id); },
                 /*actor=*/rng.below(4));
          model.emplace_back(t, id);
        } else {
          SimTime at = 0;
          q.pop(&at)();
          floor = at;
          // Model pop: earliest time, then lowest id (insertion order).
          auto it = std::min_element(model.begin(), model.end());
          ASSERT_EQ(it->first, at);
          ASSERT_EQ(it->second, fired.back());
          model.erase(it);
        }
      }
      while (!q.empty()) {
        q.pop(nullptr)();
        auto it = std::min_element(model.begin(), model.end());
        ASSERT_EQ(it->second, fired.back());
        model.erase(it);
      }
      if (rerun == 0) {
        first_run = fired;
      } else {
        EXPECT_EQ(fired, first_run) << "seed " << seed;
      }
    }
  }
}

TEST(EventQueue, ReversedTieBreakReversesOnlySameTimestampEvents) {
  EventQueue q;
  q.set_tie_break(TieBreak::kReversed);
  std::vector<int> fired;
  q.push(3, [&] { fired.push_back(-1); });
  for (int i = 0; i < 5; ++i) {
    q.push(7, [&fired, i] { fired.push_back(i); });
  }
  q.push(9, [&] { fired.push_back(-2); });
  while (!q.empty()) q.pop(nullptr)();
  EXPECT_EQ(fired, (std::vector<int>{-1, 4, 3, 2, 1, 0, -2}));
}

TEST(EventQueue, TieStatsCountSameTimestampSameActorGroups) {
  EventQueue q;
  // t=5: actor 1 twice (a group), actor 2 once, one untagged event.
  q.push(5, [] {}, 1);
  q.push(5, [] {}, 1);
  q.push(5, [] {}, 2);
  q.push(5, [] {});
  // t=6: actor 1 three times (a second group).
  q.push(6, [] {}, 1);
  q.push(6, [] {}, 1);
  q.push(6, [] {}, 1);
  while (!q.empty()) q.pop(nullptr)();
  TieStats stats = q.tie_stats();
  EXPECT_EQ(stats.groups, 2u);
  EXPECT_EQ(stats.events, 5u);
}

// Mirror of the FIFO property above for the race detector's perturbed
// mode: same-timestamp events pop in REVERSE insertion order, the rest
// still by time, and the pop sequence is identical across re-runs.
TEST(EventQueue, PropertyReversedTieOrderMatchesModelAcrossSeeds) {
  for (std::uint64_t seed : {2ull, 11ull, 4321ull, 0xc0ffeeull}) {
    std::vector<int> first_run;
    for (int rerun = 0; rerun < 2; ++rerun) {
      Rng rng(seed);
      EventQueue q;
      q.set_tie_break(TieBreak::kReversed);
      std::vector<int> fired;
      std::vector<std::pair<SimTime, int>> model;  // (time, id) pending
      int next_id = 0;
      SimTime floor = 0;
      for (int step = 0; step < 300; ++step) {
        bool push = q.empty() || rng.below(3) != 0;
        if (push) {
          SimTime t = floor + static_cast<SimTime>(10 * rng.below(4));
          int id = next_id++;
          q.push(t, [&fired, id] { fired.push_back(id); },
                 /*actor=*/rng.below(4));
          model.emplace_back(t, id);
        } else {
          SimTime at = 0;
          q.pop(&at)();
          floor = at;
          // Model pop: earliest time, then HIGHEST id (reverse order).
          auto it = std::min_element(
              model.begin(), model.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first < b.first
                                          : a.second > b.second;
              });
          ASSERT_EQ(it->first, at);
          ASSERT_EQ(it->second, fired.back());
          model.erase(it);
        }
      }
      while (!q.empty()) {
        q.pop(nullptr)();
        auto it = std::min_element(
            model.begin(), model.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : a.second > b.second;
            });
        ASSERT_EQ(it->second, fired.back());
        model.erase(it);
      }
      if (rerun == 0) {
        first_run = fired;
      } else {
        EXPECT_EQ(fired, first_run) << "seed " << seed;
      }
    }
  }
}

// kShuffled: same-timestamp events pop in a seeded permutation. Time
// order still wins (every pop comes from the earliest pending
// timestamp group), and re-runs with the same seeds are identical —
// the property the lmk-sched explorer's tie-order swarm relies on.
TEST(EventQueue, PropertyShuffledTieOrderPermutesWithinTimeGroups) {
  for (std::uint64_t seed : {3ull, 17ull, 999ull, 0xfeedull}) {
    std::vector<int> first_run;
    for (int rerun = 0; rerun < 2; ++rerun) {
      Rng rng(seed);
      EventQueue q;
      q.set_tie_break(TieBreak::kShuffled);
      q.set_shuffle_seed(seed * 1000003);
      std::vector<int> fired;
      std::map<SimTime, std::multiset<int>> model;  // pending, by time
      int next_id = 0;
      SimTime floor = 0;
      auto check_pop = [&](SimTime at) {
        auto it = model.begin();
        ASSERT_EQ(it->first, at);  // earliest pending timestamp group
        auto hit = it->second.find(fired.back());
        ASSERT_NE(hit, it->second.end())
            << "popped an event from a later time group";
        it->second.erase(hit);
        if (it->second.empty()) model.erase(it);
      };
      for (int step = 0; step < 300; ++step) {
        bool push = q.empty() || rng.below(3) != 0;
        if (push) {
          SimTime t = floor + static_cast<SimTime>(10 * rng.below(4));
          int id = next_id++;
          q.push(t, [&fired, id] { fired.push_back(id); },
                 /*actor=*/rng.below(4));
          model[t].insert(id);
        } else {
          SimTime at = 0;
          q.pop(&at)();
          floor = at;
          check_pop(at);
        }
      }
      while (!q.empty()) {
        SimTime at = 0;
        q.pop(&at)();
        check_pop(at);
      }
      if (rerun == 0) {
        first_run = fired;
      } else {
        EXPECT_EQ(fired, first_run) << "seed " << seed;
      }
    }
  }
}

TEST(EventQueue, ShuffledSeedsAreDeterministicAndDistinct) {
  auto run = [](std::uint64_t shuffle_seed) {
    EventQueue q;
    q.set_tie_break(TieBreak::kShuffled);
    q.set_shuffle_seed(shuffle_seed);
    std::vector<int> fired;
    for (int i = 0; i < 16; ++i) {
      q.push(5, [&fired, i] { fired.push_back(i); });
    }
    for (int i = 16; i < 20; ++i) {
      q.push(9, [&fired, i] { fired.push_back(i); });
    }
    while (!q.empty()) q.pop(nullptr)();
    return fired;
  };
  std::vector<int> a = run(1);
  std::vector<int> b = run(2);
  EXPECT_EQ(a, run(1));  // same seed, same permutation
  EXPECT_NE(a, b);       // different seeds perturb the tie order
  // Both runs drain the t=5 group completely before t=9, whatever the
  // permutation inside each group.
  for (const std::vector<int>& r : {a, b}) {
    std::vector<int> head(r.begin(), r.begin() + 16);
    std::vector<int> tail(r.begin() + 16, r.end());
    std::sort(head.begin(), head.end());
    std::sort(tail.begin(), tail.end());
    EXPECT_EQ(head, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                      11, 12, 13, 14, 15}));
    EXPECT_EQ(tail, (std::vector<int>{16, 17, 18, 19}));
  }
}

TEST(EventQueueDeathTest, SetTieBreakRequiresEmptyQueue) {
  EventQueue q;
  q.push(1, [] {});
  EXPECT_DEATH(q.set_tie_break(TieBreak::kReversed), "empty");
}

TEST(EventQueueDeathTest, SetShuffleSeedRequiresEmptyQueue) {
  EventQueue q;
  q.push(1, [] {});
  EXPECT_DEATH(q.set_shuffle_seed(7), "empty");
}

TEST(EventQueue, ClearThenReuseStartsFresh) {
  EventQueue q;
  q.push(50, [] {}, 1);
  q.push(50, [] {}, 1);
  q.pop(nullptr)();
  q.pop(nullptr)();
  q.push(60, [] {});
  EXPECT_EQ(q.size(), 1u);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  // clear() flushed the (t=50, actor 1) group that was forming.
  TieStats stats = q.tie_stats();
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(stats.events, 2u);
  // Reuse after clear: earlier timestamps than before are fine, and
  // FIFO tie order starts over.
  std::vector<int> fired;
  q.push(10, [&] { fired.push_back(0); });
  q.push(10, [&] { fired.push_back(1); });
  q.push(5, [&] { fired.push_back(-1); });
  while (!q.empty()) q.pop(nullptr)();
  EXPECT_EQ(fired, (std::vector<int>{-1, 0, 1}));
}

TEST(EventQueue, TieStatsMidTimestampSplitsFormingGroup) {
  // Documented behavior: tie_stats() flushes the group forming at the
  // head timestamp, so a mid-timestamp call splits one group in two.
  // Same schedule, quiescent readout: one group of four.
  EventQueue quiescent;
  for (int i = 0; i < 4; ++i) quiescent.push(5, [] {}, 1);
  while (!quiescent.empty()) quiescent.pop(nullptr)();
  TieStats whole = quiescent.tie_stats();
  EXPECT_EQ(whole.groups, 1u);
  EXPECT_EQ(whole.events, 4u);
  // Mid-timestamp readout after two of the four pops: the forming
  // half-group is flushed and counted on its own.
  EventQueue split;
  for (int i = 0; i < 4; ++i) split.push(5, [] {}, 1);
  split.pop(nullptr)();
  split.pop(nullptr)();
  TieStats mid = split.tie_stats();
  EXPECT_EQ(mid.groups, 1u);
  EXPECT_EQ(mid.events, 2u);
  while (!split.empty()) split.pop(nullptr)();
  TieStats total = split.tie_stats();
  EXPECT_EQ(total.groups, 2u);
  EXPECT_EQ(total.events, 4u);
}

// ----- EventClosure storage -----

TEST(EventClosure, SmallCapturesStayInline) {
  int hits = 0;
  std::uint64_t a = 1, b = 2, c = 3, d = 4, e = 5;  // 40 bytes + ptr
  EventClosure fn([&hits, a, b, c, d, e] {
    hits += static_cast<int>(a + b + c + d + e);
  });
  EXPECT_TRUE(fn.is_inline());
  fn();
  EXPECT_EQ(hits, 15);
}

TEST(EventClosure, OversizeCapturesFallBackToHeap) {
  std::array<std::uint64_t, 12> big{};  // 96 bytes > kInlineBytes
  big[11] = 7;
  int seen = 0;
  EventClosure fn([&seen, big] { seen = static_cast<int>(big[11]); });
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(seen, 7);
}

TEST(EventClosure, MoveTransfersOwnershipAndSupportsMoveOnlyCaptures) {
  auto value = std::make_unique<int>(42);
  int seen = 0;
  EventClosure fn([&seen, value = std::move(value)] { seen = *value; });
  EventClosure moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(moved));
  moved();
  EXPECT_EQ(seen, 42);
  EventClosure assigned;
  assigned = std::move(moved);
  assigned();
  EXPECT_EQ(seen, 42);
}

// ----- network jitter -----

// The jitter perturbation must ROUND to the nearest microsecond:
// truncation floors every sub-unit draw to zero, which silently
// disables jitter on low-latency links and biases the rest low. Pin the
// exact delivery times for a fixed seed by replaying the generator.
TEST(Network, JitterRoundsToNearestMicrosecond) {
  constexpr SimTime kDelay = 10;
  constexpr double kJitter = 0.15;  // kDelay * kJitter = 1.5 < 2
  constexpr std::uint64_t kSeed = 99;
  constexpr int kSends = 64;
  Simulator sim;
  ConstantLatencyModel topo(2, kDelay);
  Network net(sim, topo);
  net.set_jitter(kJitter, kSeed);
  std::vector<SimTime> arrivals;
  for (int i = 0; i < kSends; ++i) {
    net.send(0, 1, 1, [&] { arrivals.push_back(sim.now()); });
  }
  sim.run();
  std::sort(arrivals.begin(), arrivals.end());
  // Replay the jitter stream: offsets are llround(delay * j * u).
  Rng replay(kSeed);
  std::vector<SimTime> expected;
  int rounded_up = 0;
  int truncated_nonzero = 0;
  for (int i = 0; i < kSends; ++i) {
    double perturb = static_cast<double>(kDelay) * kJitter *
                     replay.uniform();
    expected.push_back(kDelay + std::llround(perturb));
    if (std::llround(perturb) > static_cast<SimTime>(perturb)) ++rounded_up;
    if (static_cast<SimTime>(perturb) > 0) ++truncated_nonzero;
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(arrivals, expected);
  // The fixture stays meaningful: for this seed some draws land in
  // [0.5, 1), exactly the ones truncation would zero out.
  EXPECT_GT(rounded_up, 0);
  EXPECT_LT(truncated_nonzero, rounded_up + truncated_nonzero);
}

TEST(Simulator, AuditHookFiresOnCadenceCrossingsAndQuiescence) {
  Simulator sim;
  std::vector<SimTime> audited;
  sim.set_audit(100, [&](SimTime t) { audited.push_back(t); });
  for (SimTime t : {50, 150, 340}) sim.schedule_at(t, [] {});
  sim.run();
  // Crossing t=100 observed at the 150us event, 200 and 300 at the
  // 340us event, plus the quiescence pass at 340.
  EXPECT_EQ(audited, (std::vector<SimTime>{150, 340, 340, 340}));
  EXPECT_EQ(sim.audits_fired(), 4u);
  sim.run();  // nothing ran: no extra quiescence audit
  EXPECT_EQ(sim.audits_fired(), 4u);
}

}  // namespace
}  // namespace lmk
