// Tests for the arena lifetime sanitizer (common/arena.hpp,
// LMK_ARENA_GUARD) and the mutation-checked entry view
// (core/entry_store.hpp). The epoch counter and the checked-handle API
// exist in every build; the traps and the 0xDE poison only exist under
// the guard, so the death tests are compiled only there and the plain
// build instead proves the handles are zero-cost pass-throughs.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/alloc_guard.hpp"
#include "common/arena.hpp"
#include "core/entry_store.hpp"

namespace lmk {
namespace {

TEST(ArenaEpoch, ResetAndReleaseBumpTheEpoch) {
  Arena arena;
  EXPECT_EQ(arena.epoch(), 0u);
  arena.reset();
  EXPECT_EQ(arena.epoch(), 1u);
  (void)arena.allocate(64);
  arena.reset();
  EXPECT_EQ(arena.epoch(), 2u);
  arena.release();
  EXPECT_EQ(arena.epoch(), 3u);
}

TEST(ArenaRefTest, MakeConstructsAndDereferences) {
  struct Pair {
    int a;
    int b;
  };
  Arena arena;
  ArenaRef<Pair> ref = arena.make<Pair>(3, 4);
  EXPECT_TRUE(static_cast<bool>(ref));
  EXPECT_EQ(ref->a, 3);
  EXPECT_EQ((*ref).b, 4);
  EXPECT_EQ(ref.get()->a, 3);
}

TEST(ArenaSpanTest, GuardedSpanReadsAndWrites) {
  Arena arena;
  ArenaSpan<double> span = arena.guarded_span<double>(8);
  ASSERT_EQ(span.size(), 8u);
  EXPECT_FALSE(span.empty());
  for (std::size_t i = 0; i < span.size(); ++i) {
    span[i] = static_cast<double>(i);
  }
  std::span<double> head = span.subspan(0, 4);
  EXPECT_EQ(head.size(), 4u);
  EXPECT_EQ(head[3], 3.0);
  EXPECT_EQ(span.raw().size(), 8u);
}

EntryStore two_entry_store() {
  EntryStore store;
  const double p0[] = {1.0, 2.0};
  const double p1[] = {3.0, 4.0};
  store.push_back(/*key=*/10, /*object=*/100, p0);
  store.push_back(/*key=*/20, /*object=*/200, p1);
  return store;
}

TEST(CheckedEntryViewTest, ReadsThroughTheStore) {
  EntryStore store = two_entry_store();
  CheckedEntryView v = store.checked_view(1);
  EXPECT_EQ(v.key(), 20u);
  EXPECT_EQ(v.object(), 200u);
  ASSERT_EQ(v.point().size(), 2u);
  EXPECT_EQ(v.point()[1], 4.0);
}

#ifdef LMK_ARENA_GUARD

using ArenaGuardDeathTest = ::testing::Test;

TEST(ArenaGuardDeathTest, RefTrapsOnUseAfterReset) {
  Arena arena;
  ArenaRef<int> ref = arena.make<int>(42);
  EXPECT_EQ(*ref, 42);
  arena.reset();
  EXPECT_DEATH((void)*ref, "arena use-after-reset");
}

TEST(ArenaGuardDeathTest, TrapNamesGrantPhaseAndEpochs) {
  Arena arena;
  ArenaRef<int> ref;
  {
    AllocPhaseScope phase("grant-phase");
    ref = arena.make<int>(1);
  }
  arena.reset();
  arena.reset();
  // The diagnostic carries where the memory came from (phase at grant)
  // and how far the arena has moved (epoch pair) — the two facts needed
  // to find the stale handle without a debugger.
  EXPECT_DEATH((void)*ref,
               "granted in phase 'grant-phase' at epoch 0, arena now at "
               "epoch 2");
}

TEST(ArenaGuardDeathTest, SpanTrapsOnUseAfterReset) {
  Arena arena;
  ArenaSpan<double> span = arena.guarded_span<double>(4);
  span[0] = 1.0;
  arena.reset();
  EXPECT_DEATH((void)span[0], "arena use-after-reset");
  EXPECT_DEATH((void)span.raw(), "arena use-after-reset");
  EXPECT_DEATH((void)span.subspan(0, 2), "arena use-after-reset");
}

TEST(ArenaGuardDeathTest, ArrowTrapsAfterRelease) {
  struct Boxed {
    int value;
  };
  Arena arena;
  ArenaRef<Boxed> ref = arena.make<Boxed>(9);
  arena.release();
  EXPECT_DEATH((void)ref->value, "arena use-after-reset");
}

TEST(ArenaGuard, ResetPoisonsRecycledBytes) {
  Arena arena;
  auto span = arena.allocate_span<unsigned char>(256);
  std::memset(span.data(), 0xAB, span.size());
  unsigned char* raw = span.data();
  arena.reset();
  // The chunk is retained (reset recycles, never frees), so the bytes
  // stay mapped — the guard overwrites them with the 0xDE pattern so a
  // stale read is unmistakable in a debugger or an assertion.
  for (std::size_t i = 0; i < 256; ++i) {
    ASSERT_EQ(raw[i], 0xDE) << "byte " << i << " not poisoned";
  }
}

TEST(ArenaGuardDeathTest, StaleEntryViewTrapsAfterMutation) {
  EntryStore store = two_entry_store();
  CheckedEntryView v = store.checked_view(0);
  EXPECT_EQ(v.key(), 10u);
  const double p2[] = {5.0, 6.0};
  store.push_back(/*key=*/30, /*object=*/300, p2);
  EXPECT_DEATH((void)v.key(), "stale entry view: store mutated");
}

TEST(ArenaGuardDeathTest, StaleEntryViewCountsMutations) {
  EntryStore store = two_entry_store();
  CheckedEntryView v = store.checked_view(1);
  store.erase_at(0);
  const double p2[] = {5.0, 6.0};
  store.push_back(/*key=*/30, /*object=*/300, p2);
  EXPECT_DEATH((void)v.point(),
               "store mutated 2 time\\(s\\) since the view of entry 1");
}

#else  // !LMK_ARENA_GUARD

TEST(ArenaGuard, PlainBuildHandlesAreUnchecked) {
  // Without the guard the handles carry no arena back-pointer: a
  // dereference after reset must not trap (it reads recycled memory,
  // which is exactly the silent failure mode the guard build exists to
  // catch). We only prove the accessors stay callable here.
  Arena arena;
  ArenaRef<int> ref = arena.make<int>(5);
  EXPECT_EQ(*ref, 5);
  arena.reset();
  EXPECT_NE(ref.get(), nullptr);

  EntryStore store = two_entry_store();
  CheckedEntryView v = store.checked_view(0);
  const double p2[] = {5.0, 6.0};
  store.push_back(/*key=*/30, /*object=*/300, p2);
  EXPECT_EQ(v.key(), 10u);  // no trap: plain build does not check
}

#endif  // LMK_ARENA_GUARD

}  // namespace
}  // namespace lmk
