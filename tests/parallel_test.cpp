// The deterministic thread pool (common/parallel.hpp) and the
// bit-identical-across-thread-counts contract of the offline phases it
// accelerates: ground-truth oracle, landmark selection, index-space
// mapping, and bulk insert placement.
#include "common/parallel.hpp"

#include <atomic>
#include <gtest/gtest.h>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "chord/ring.hpp"
#include "core/index_platform.hpp"
#include "eval/ground_truth.hpp"
#include "landmark/mapper.hpp"
#include "landmark/selection.hpp"
#include "net/latency_model.hpp"
#include "sim/network.hpp"
#include "workload/synthetic.hpp"

namespace lmk {
namespace {

/// Restores the default thread configuration when a test exits.
struct ThreadGuard {
  ~ThreadGuard() { set_threads(0); }
};

TEST(ParallelFor, EmptyRangeNeverInvokes) {
  ThreadGuard guard;
  for (std::size_t t : {1u, 8u}) {
    set_threads(t);
    std::atomic<int> calls{0};
    parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  for (std::size_t t : {1u, 3u, 8u}) {
    set_threads(t);
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << t;
    }
  }
}

TEST(ParallelFor, FewerItemsThanChunksOrThreads) {
  ThreadGuard guard;
  set_threads(8);
  std::vector<std::atomic<int>> hits(3);
  // grain 1 → 3 chunks for 8 threads; the surplus workers find nothing.
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); },
               /*grain=*/1);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Single index still works.
  std::atomic<int> one{0};
  parallel_for(1, [&](std::size_t) { one.fetch_add(1); });
  EXPECT_EQ(one.load(), 1);
}

TEST(ParallelFor, ExceptionsPropagateAndPoolSurvives) {
  ThreadGuard guard;
  for (std::size_t t : {1u, 4u}) {
    set_threads(t);
    EXPECT_THROW(
        parallel_for(
            100,
            [&](std::size_t i) {
              if (i == 57) throw std::runtime_error("boom");
            },
            /*grain=*/1),
        std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<int> calls{0};
    parallel_for(10, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 10);
  }
}

TEST(ParallelChunks, BoundariesIndependentOfThreadCount) {
  ThreadGuard guard;
  // Per-chunk partial sums merged in chunk order must be bit-identical
  // for any thread count: chunk boundaries depend only on n and grain.
  auto chunk_sums = [](std::size_t threads) {
    set_threads(threads);
    std::vector<double> values(10000);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = 1.0 / static_cast<double>(i + 1);
    }
    std::size_t grain = detail::default_grain(values.size());
    std::size_t chunks = (values.size() + grain - 1) / grain;
    std::vector<double> partial(chunks, 0.0);
    parallel_chunks(values.size(), [&](std::size_t b, std::size_t e) {
      double acc = 0;
      for (std::size_t i = b; i < e; ++i) acc += values[i];
      partial[b / grain] = acc;
    });
    double total = 0;
    for (double p : partial) total += p;
    return total;
  };
  double t1 = chunk_sums(1);
  double t8 = chunk_sums(8);
  EXPECT_EQ(t1, t8);  // bitwise, not approximate
}

TEST(ParallelFor, NestedCallsRunInline) {
  ThreadGuard guard;
  set_threads(4);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(8, [&](std::size_t outer) {
    parallel_for(8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ---------------------------------------------------------------------
// parallel_tasks: task-level submission with bounded concurrency (the
// sweep engine's substrate).
// ---------------------------------------------------------------------

TEST(ParallelTasks, CoversEveryTaskExactlyOnce) {
  ThreadGuard guard;
  for (std::size_t t : {1u, 3u, 8u}) {
    set_threads(t);
    std::vector<std::atomic<int>> hits(100);
    parallel_tasks(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << " threads " << t;
    }
  }
}

TEST(ParallelTasks, ZeroTasksNeverInvokes) {
  ThreadGuard guard;
  set_threads(4);
  std::atomic<int> calls{0};
  parallel_tasks(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelTasks, BoundedConcurrencyIsHonored) {
  ThreadGuard guard;
  set_threads(8);
  for (std::size_t cap : {1u, 2u}) {
    std::atomic<std::size_t> active{0};
    std::atomic<std::size_t> peak{0};
    std::atomic<int> ran{0};
    parallel_tasks(
        16,
        [&](std::size_t) {
          std::size_t now = active.fetch_add(1) + 1;
          std::size_t seen = peak.load();
          while (now > seen && !peak.compare_exchange_weak(seen, now)) {
          }
          // Busy-wait briefly so overlapping tasks would be observed.
          std::atomic<int> spin{0};
          while (spin.fetch_add(1, std::memory_order_relaxed) < 2000) {
          }
          ran.fetch_add(1);
          active.fetch_sub(1);
        },
        cap);
    EXPECT_EQ(ran.load(), 16);
    EXPECT_LE(peak.load(), cap);
  }
}

TEST(ParallelTasks, NestedParallelForDoesNotDeadlock) {
  ThreadGuard guard;
  set_threads(4);
  std::vector<std::atomic<int>> hits(4 * 32);
  parallel_tasks(
      4,
      [&](std::size_t task) {
        // Inside a worker, nested parallel_for runs inline with the same
        // chunk boundaries.
        parallel_for(32, [&](std::size_t i) {
          hits[task * 32 + i].fetch_add(1);
        });
      },
      /*max_concurrent=*/2);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTasks, ExceptionsPropagateAndPoolSurvives) {
  ThreadGuard guard;
  set_threads(4);
  EXPECT_THROW(parallel_tasks(20,
                              [&](std::size_t i) {
                                if (i == 13) {
                                  throw std::runtime_error("cell boom");
                                }
                              }),
               std::runtime_error);
  std::atomic<int> calls{0};
  parallel_tasks(10, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 10);
}

// ---------------------------------------------------------------------
// Determinism of the parallelized offline phases: every result below
// must be bit-identical between LMK_THREADS=1 and LMK_THREADS=8.
// ---------------------------------------------------------------------

SyntheticDataset small_dataset() {
  SyntheticConfig cfg;
  cfg.objects = 1500;
  cfg.dims = 12;
  cfg.clusters = 5;
  cfg.deviation = 10;
  Rng rng(77);
  return generate_clustered(cfg, rng);
}

TEST(ParallelDeterminism, OracleBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  SyntheticDataset data = small_dataset();
  Rng qrng(5);
  std::vector<DenseVector> queries;
  for (int i = 0; i < 40; ++i) {
    queries.push_back(data.points[qrng.below(data.points.size())]);
  }
  L2Space l2;
  set_threads(1);
  auto truth1 = knn_bruteforce_batch(l2, data.points, queries, 10);
  set_threads(8);
  auto truth8 = knn_bruteforce_batch(l2, data.points, queries, 10);
  EXPECT_EQ(truth1, truth8);
}

TEST(ParallelDeterminism, KMeansBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  SyntheticDataset data = small_dataset();
  set_threads(1);
  Rng rng1(99);
  auto c1 = kmeans_dense(std::span<const DenseVector>(data.points), 8, rng1);
  set_threads(8);
  Rng rng8(99);
  auto c8 = kmeans_dense(std::span<const DenseVector>(data.points), 8, rng8);
  ASSERT_EQ(c1.size(), c8.size());
  EXPECT_EQ(c1, c8);  // element-wise double ==, i.e. bit-identical values
  // Both runs must also have consumed the same rng draws.
  EXPECT_EQ(rng1.next(), rng8.next());
}

TEST(ParallelDeterminism, GreedyBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  SyntheticDataset data = small_dataset();
  L2Space l2;
  set_threads(1);
  Rng rng1(31);
  auto g1 = greedy_selection(l2, std::span<const DenseVector>(data.points),
                             10, rng1);
  set_threads(8);
  Rng rng8(31);
  auto g8 = greedy_selection(l2, std::span<const DenseVector>(data.points),
                             10, rng8);
  EXPECT_EQ(g1, g8);
}

TEST(ParallelDeterminism, MapperBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  SyntheticDataset data = small_dataset();
  L2Space l2;
  Rng rng(13);
  auto landmarks =
      greedy_selection(l2, std::span<const DenseVector>(data.points), 6, rng);
  LandmarkMapper<L2Space> mapper(l2, landmarks,
                                 uniform_boundary(6, 0, 1000));
  set_threads(1);
  auto m1 = mapper.map_all(std::span<const DenseVector>(data.points));
  set_threads(8);
  auto m8 = mapper.map_all(std::span<const DenseVector>(data.points));
  EXPECT_EQ(m1, m8);
}

TEST(ParallelDeterminism, BulkInsertMatchesSequentialInsert) {
  ThreadGuard guard;
  SyntheticDataset data = small_dataset();
  L2Space l2;
  Rng rng(17);
  auto landmarks =
      greedy_selection(l2, std::span<const DenseVector>(data.points), 4, rng);
  LandmarkMapper<L2Space> mapper(l2, landmarks, uniform_boundary(4, 0, 1000));
  auto points = mapper.map_all(std::span<const DenseVector>(data.points));

  auto build = [&](bool bulk, std::size_t threads) {
    set_threads(threads);
    auto sim = std::make_unique<Simulator>();
    auto topo = std::make_unique<ConstantLatencyModel>(32, kMillisecond);
    auto net = std::make_unique<Network>(*sim, *topo);
    auto ring = std::make_unique<Ring>(*net, Ring::Options{});
    for (HostId h = 0; h < 32; ++h) ring->create_node(h);
    ring->bootstrap();
    auto platform = std::make_unique<IndexPlatform>(*ring);
    std::uint32_t sc =
        platform->register_scheme("det", uniform_boundary(4, 0, 1000), false);
    if (bulk) {
      platform->bulk_insert(sc, points);
    } else {
      for (std::size_t i = 0; i < points.size(); ++i) {
        platform->insert(sc, i, points[i]);
      }
    }
    // Serialize every node's store in ring order.
    std::vector<std::pair<Id, std::vector<std::pair<Id, std::uint64_t>>>> out;
    for (const ChordNode* n : ring->alive_nodes()) {
      std::vector<std::pair<Id, std::uint64_t>> entries;
      for (EntryView e : platform->store(*n, sc)) {
        entries.emplace_back(e.key, e.object);
      }
      out.emplace_back(n->id(), std::move(entries));
    }
    return out;
  };

  auto sequential = build(false, 1);
  auto bulk1 = build(true, 1);
  auto bulk8 = build(true, 8);
  EXPECT_EQ(sequential, bulk1);
  EXPECT_EQ(bulk1, bulk8);
}

}  // namespace
}  // namespace lmk
