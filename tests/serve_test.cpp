// Serving-layer semantics (src/serve/): hot-result cache unit behavior
// (LRU, TTL, coverage-precision invalidation), end-to-end cache
// correctness against a brute-force oracle under randomized mutation
// traces, admission-control shed/retry termination and determinism,
// and cross-query batching byte savings.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/index_platform.hpp"
#include "serve/result_cache.hpp"

namespace lmk {
namespace {

Region box2(double lo, double hi) {
  return Region{{Interval{lo, hi}, Interval{lo, hi}}};
}

TEST(LinfBoxDistance, ZeroInsidePositiveOutside) {
  Region r = box2(0.2, 0.4);
  const double inside[] = {0.3, 0.3};
  const double edge[] = {0.4, 0.2};
  const double outside[] = {0.5, 0.3};
  EXPECT_EQ(linf_box_distance(inside, r), 0.0);
  EXPECT_EQ(linf_box_distance(edge, r), 0.0);  // closed intervals
  EXPECT_DOUBLE_EQ(linf_box_distance(outside, r), 0.1);
  const double corner[] = {0.5, 0.55};
  EXPECT_DOUBLE_EQ(linf_box_distance(corner, r), 0.15);
}

TEST(ResultCache, HitMissAndLruEviction) {
  ResultCache cache(/*slots=*/2, /*max_entries=*/0, /*ttl=*/0);
  const std::uint64_t objs_a[] = {1, 2};
  const double coords_a[] = {0.25, 0.25, 0.3, 0.3};
  const std::uint64_t objs_b[] = {7};
  const double coords_b[] = {0.6, 0.6};
  cache.insert(box2(0.2, 0.4), 0, objs_a, coords_a, 2);
  cache.insert(box2(0.5, 0.7), 0, objs_b, coords_b, 2);

  std::span<const std::uint64_t> o;
  std::span<const double> c;
  std::size_t dims = 0;
  ASSERT_TRUE(cache.probe(box2(0.2, 0.4), 0, &o, &c, &dims));
  EXPECT_EQ(dims, 2u);
  ASSERT_EQ(o.size(), 2u);
  EXPECT_EQ(o[0], 1u);
  EXPECT_EQ(c[2], 0.3);
  // Probe bumped A's recency; inserting a third region evicts B.
  const std::uint64_t objs_c[] = {9};
  const double coords_c[] = {0.1, 0.1};
  cache.insert(box2(0.0, 0.15), 0, objs_c, coords_c, 2);
  EXPECT_TRUE(cache.probe(box2(0.2, 0.4), 0, &o, &c, &dims));
  EXPECT_FALSE(cache.probe(box2(0.5, 0.7), 0, &o, &c, &dims));
  EXPECT_TRUE(cache.probe(box2(0.0, 0.15), 0, &o, &c, &dims));
  EXPECT_EQ(cache.stats().evictions, 1u);
  // A near-identical region (different hi) is a different key.
  EXPECT_FALSE(cache.probe(box2(0.2, 0.40001), 0, &o, &c, &dims));
}

TEST(ResultCache, CoverageInvalidationIsPrecise) {
  ResultCache cache(4, 0, 0);
  const std::uint64_t objs[] = {1};
  const double coords[] = {0.3, 0.3};
  cache.insert(box2(0.2, 0.4), 0, objs, coords, 2);
  cache.insert(box2(0.6, 0.8), 0, objs, coords, 2);

  // A point outside both regions invalidates neither.
  const double miss[] = {0.5, 0.5};
  cache.invalidate_point(miss);
  EXPECT_EQ(cache.live_slots(), 2u);
  // A point covering only the first region drops exactly that slot;
  // the closed-interval edge counts as covered.
  const double edge[] = {0.4, 0.4};
  cache.invalidate_point(edge);
  EXPECT_EQ(cache.live_slots(), 1u);
  std::span<const std::uint64_t> o;
  std::span<const double> c;
  std::size_t dims = 0;
  EXPECT_FALSE(cache.probe(box2(0.2, 0.4), 0, &o, &c, &dims));
  EXPECT_TRUE(cache.probe(box2(0.6, 0.8), 0, &o, &c, &dims));
  EXPECT_EQ(cache.stats().point_invalidations, 1u);
  cache.invalidate_all();
  EXPECT_EQ(cache.live_slots(), 0u);
}

TEST(ResultCache, TtlExpiresAndOversizeSkips) {
  ResultCache cache(2, /*max_entries=*/1, /*ttl=*/100);
  const std::uint64_t one[] = {1};
  const double coords[] = {0.3, 0.3};
  cache.insert(box2(0.2, 0.4), /*now=*/50, one, coords, 2);
  std::span<const std::uint64_t> o;
  std::span<const double> c;
  std::size_t dims = 0;
  EXPECT_TRUE(cache.probe(box2(0.2, 0.4), 100, &o, &c, &dims));
  EXPECT_TRUE(cache.probe(box2(0.2, 0.4), 150, &o, &c, &dims));  // age 100
  EXPECT_FALSE(cache.probe(box2(0.2, 0.4), 151, &o, &c, &dims));
  // Oversized hit-lists are skipped, not truncated.
  const std::uint64_t two[] = {1, 2};
  const double coords2[] = {0.3, 0.3, 0.35, 0.35};
  cache.insert(box2(0.5, 0.6), 0, two, coords2, 2);
  EXPECT_FALSE(cache.probe(box2(0.5, 0.6), 0, &o, &c, &dims));
  EXPECT_EQ(cache.stats().oversize_skips, 1u);
}

struct Stack {
  Stack(std::size_t hosts, std::uint64_t seed)
      : topo(hosts, 12 * kMillisecond), net(sim, topo) {
    Ring::Options ropts;
    ropts.seed = seed;
    ring = std::make_unique<Ring>(net, ropts);
    for (HostId h = 0; h < hosts; ++h) ring->create_node(h);
    ring->bootstrap();
    platform = std::make_unique<IndexPlatform>(*ring);
  }

  std::optional<IndexPlatform::QueryOutcome> query_all(std::uint32_t scheme,
                                                       Region region) {
    std::optional<IndexPlatform::QueryOutcome> outcome;
    platform->region_query(*ring->alive_nodes()[0], scheme, region,
                           IndexPoint(region.dims(), 0.5),
                           ReplyMode::kAllMatches,
                           [&](const auto& o) { outcome = o; });
    sim.run();
    return outcome;
  }

  Simulator sim;
  ConstantLatencyModel topo;
  Network net;
  std::unique_ptr<Ring> ring;
  std::unique_ptr<IndexPlatform> platform;
};

ServeOptions cache_only_options() {
  ServeOptions so;
  so.cache_enabled = true;
  so.cache_slots = 32;
  so.cache_max_entries = 512;
  so.verify_hits = true;  // every hit oracle-checked in-line
  return so;
}

/// Randomized insert/extract/migration trace with interleaved queries
/// against a rotated scheme: every query's result set must equal the
/// brute-force oracle id-for-id — a stale cache hit either diverges
/// here or trips the in-line LMK_SERVE_VERIFY re-solve.
TEST(ServeCacheCorrectness, RandomizedMutationTraceMatchesOracle) {
  Stack s(24, 7);
  s.platform->set_serve_options(cache_only_options());
  // rotate=true: cache keys live in index space while placement is
  // rotated — the invalidation plumbing must respect both.
  auto scheme =
      s.platform->register_scheme("trace", uniform_boundary(2, 0, 1), true);

  Rng rng(99);
  std::map<std::uint64_t, IndexPoint> shadow;
  std::uint64_t next_id = 0;
  auto random_point = [&]() { return IndexPoint{rng.uniform(), rng.uniform()}; };
  auto random_region = [&]() {
    const double cx = rng.uniform();
    const double cy = rng.uniform();
    const double r = 0.05 + 0.25 * rng.uniform();
    Region reg{{Interval{std::max(0.0, cx - r), std::min(1.0, cx + r)},
                Interval{std::max(0.0, cy - r), std::min(1.0, cy + r)}}};
    return reg;
  };
  auto check_query = [&](const Region& reg) {
    auto outcome = s.query_all(scheme, reg);
    ASSERT_TRUE(outcome.has_value());
    ASSERT_TRUE(outcome->complete);
    std::set<std::uint64_t> got(outcome->results.begin(),
                                outcome->results.end());
    std::set<std::uint64_t> want;
    for (const auto& [id, pt] : shadow) {
      bool inside = true;
      for (std::size_t d = 0; d < 2; ++d) {
        if (pt[d] < reg.ranges[d].lo || pt[d] > reg.ranges[d].hi) {
          inside = false;
          break;
        }
      }
      if (inside) want.insert(id);
    }
    ASSERT_EQ(got, want);
  };

  for (int i = 0; i < 60; ++i) {
    shadow.emplace(next_id, random_point());
    s.platform->insert(scheme, next_id, shadow.at(next_id));
    ++next_id;
  }
  // A few fixed hot regions so later rounds actually hit the cache.
  std::vector<Region> hot;
  for (int i = 0; i < 4; ++i) hot.push_back(random_region());

  for (int round = 0; round < 12; ++round) {
    // Mutate: inserts, removes, and occasionally a bulk move.
    for (int i = 0; i < 5; ++i) {
      shadow.emplace(next_id, random_point());
      s.platform->insert(scheme, next_id, shadow.at(next_id));
      ++next_id;
    }
    if (!shadow.empty() && round % 2 == 0) {
      auto victim = shadow.begin();
      std::advance(victim, static_cast<long>(rng.below(shadow.size())));
      ASSERT_TRUE(s.platform->remove(scheme, victim->first, victim->second));
      shadow.erase(victim);
    }
    if (round % 4 == 3) {
      // Migration-shaped bulk move: drain a node onto a peer, then pull
      // the owned entries straight back — placement ends correct, both
      // stores mutated through the bulk (extract/append) path.
      auto nodes = s.ring->alive_nodes();
      ChordNode* a = nodes[rng.below(nodes.size())];
      ChordNode* b = nodes[rng.below(nodes.size())];
      if (a != b) {
        s.platform->drain_all(*a, *b);
        s.platform->transfer_owned(*b, *a);
        s.platform->check_placement_invariant();
      }
    }
    if (round == 7) {
      s.platform->repair_replication();  // global rebuild (wipe path)
    }
    // Query: hot regions (cache hits) plus a fresh random one.
    for (const Region& reg : hot) check_query(reg);
    check_query(random_region());
  }
  const ServeState* serve = s.platform->serve_state();
  ASSERT_NE(serve, nullptr);
  const CacheStats cs = serve->aggregate_cache_stats();
  EXPECT_GT(cs.hits, 0u) << "trace never exercised the hit path";
  EXPECT_GT(cs.point_invalidations + cs.wipes, 0u);
  EXPECT_EQ(serve->stats().verified_hits, cs.hits);
}

TEST(ServeCacheCorrectness, RepeatedQueryHitsAndClearInvalidates) {
  Stack s(8, 3);
  s.platform->set_serve_options(cache_only_options());
  auto scheme =
      s.platform->register_scheme("hot", uniform_boundary(2, 0, 1), false);
  Rng rng(11);
  for (std::uint64_t i = 0; i < 80; ++i) {
    s.platform->insert(scheme, i, IndexPoint{rng.uniform(), rng.uniform()});
  }
  Region reg = box2(0.3, 0.6);
  auto first = s.query_all(scheme, reg);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->cache_hits, 0u);
  auto second = s.query_all(scheme, reg);
  ASSERT_TRUE(second.has_value());
  EXPECT_GT(second->cache_hits, 0u);
  EXPECT_EQ(second->results.size(), first->results.size());
  // The cached solve skips the store: strictly less scanning.
  EXPECT_LT(second->scanned, first->scanned);
  // clear_scheme wipes every node's cache: next query misses and sees
  // the emptied store.
  s.platform->clear_scheme(scheme);
  auto third = s.query_all(scheme, reg);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->cache_hits, 0u);
  EXPECT_TRUE(third->results.empty());
}

ServeOptions overload_options() {
  ServeOptions so;
  so.queue_limit = 2;
  so.service_time = 2 * kMillisecond;
  so.backoff = 5 * kMillisecond;
  so.max_retries = 3;  // low ceiling so ceiling drops happen too
  return so;
}

/// Shed queries still terminate: a burst far over the queue limit
/// completes every query, through retries or (at the retry ceiling)
/// dropped subqueries accounted through the fanout tracker.
TEST(ServeAdmission, ShedQueriesTerminate) {
  Stack s(8, 5);
  s.platform->set_serve_options(overload_options());
  auto scheme =
      s.platform->register_scheme("load", uniform_boundary(2, 0, 1), false);
  Rng rng(21);
  for (std::uint64_t i = 0; i < 60; ++i) {
    s.platform->insert(scheme, i, IndexPoint{rng.uniform(), rng.uniform()});
  }
  const int kQueries = 40;
  int completed = 0;
  std::uint64_t shed_total = 0;
  std::uint64_t lost_total = 0;
  for (int i = 0; i < kQueries; ++i) {
    // Same hot region from every origin: all subqueries pile onto the
    // same few index nodes, overrunning queue_limit immediately.
    s.platform->region_query(
        *s.ring->alive_nodes()[static_cast<std::size_t>(i) %
                               s.ring->alive_nodes().size()],
        scheme, box2(0.2, 0.7), IndexPoint{0.45, 0.45},
        ReplyMode::kAllMatches, [&](const IndexPlatform::QueryOutcome& o) {
          EXPECT_TRUE(o.complete);
          completed += 1;
          shed_total += o.shed;
          lost_total += static_cast<std::uint64_t>(o.lost_subqueries);
        });
  }
  s.sim.run();
  EXPECT_EQ(completed, kQueries);
  EXPECT_EQ(s.platform->active_queries(), 0u);
  EXPECT_GT(shed_total, 0u) << "burst never tripped admission control";
  const ServeState* serve = s.platform->serve_state();
  ASSERT_NE(serve, nullptr);
  EXPECT_EQ(serve->stats().shed, shed_total);
  EXPECT_EQ(serve->stats().retries, serve->stats().shed);
  EXPECT_EQ(serve->stats().retry_drops, 0u);
  // Ceiling drops (if the burst pushed any subquery past max_retries)
  // are exactly the losses the outcomes report — nothing vanishes.
  EXPECT_EQ(serve->stats().dropped, lost_total);
  EXPECT_EQ(serve->stats().forced_admits, 0u);  // tree routing never forces
}

/// The serving tier is deterministic: an identical stack and workload
/// reproduces outcomes field-for-field (in-process; cross-thread-count
/// identity is enforced by scripts/check.sh --serve-smoke at bench
/// scale).
TEST(ServeAdmission, ShedScheduleIsDeterministic) {
  auto run = [](std::vector<std::tuple<SimTime, std::uint64_t, std::uint64_t>>*
                    out) {
    Stack s(8, 5);
    ServeOptions so = overload_options();
    so.cache_enabled = true;  // caches + admission together
    s.platform->set_serve_options(so);
    auto scheme =
        s.platform->register_scheme("det", uniform_boundary(2, 0, 1), false);
    Rng rng(33);
    for (std::uint64_t i = 0; i < 50; ++i) {
      s.platform->insert(scheme, i, IndexPoint{rng.uniform(), rng.uniform()});
    }
    for (int i = 0; i < 24; ++i) {
      s.platform->region_query(
          *s.ring->alive_nodes()[0], scheme, box2(0.25, 0.65),
          IndexPoint{0.45, 0.45}, ReplyMode::kAllMatches,
          [out](const IndexPlatform::QueryOutcome& o) {
            out->emplace_back(o.max_latency, o.shed,
                              static_cast<std::uint64_t>(o.results.size()));
          });
    }
    s.sim.run();
  };
  std::vector<std::tuple<SimTime, std::uint64_t, std::uint64_t>> a;
  std::vector<std::tuple<SimTime, std::uint64_t, std::uint64_t>> b;
  run(&a);
  run(&b);
  ASSERT_EQ(a.size(), 24u);
  EXPECT_EQ(a, b);
}

/// Cross-query batching: concurrent queries sharing next hops coalesce
/// into fewer, larger messages — same results, fewer bytes on the wire.
TEST(ServeBatching, CoalescingWindowSavesBytesSameResults) {
  auto run = [](SimTime window, std::set<std::uint64_t>* ids,
                std::uint64_t* bytes, std::uint64_t* msgs,
                std::uint64_t* merged) {
    Stack s(16, 9);
    if (window > 0) {
      ServeOptions so;
      so.coalesce_window = window;
      s.platform->set_serve_options(so);
    }
    auto scheme =
        s.platform->register_scheme("batch", uniform_boundary(2, 0, 1), false);
    Rng rng(17);
    for (std::uint64_t i = 0; i < 120; ++i) {
      s.platform->insert(scheme, i, IndexPoint{rng.uniform(), rng.uniform()});
    }
    std::uint64_t total_bytes = 0;
    int completed = 0;
    for (int i = 0; i < 12; ++i) {
      s.platform->region_query(
          *s.ring->alive_nodes()[0], scheme, box2(0.3, 0.62),
          IndexPoint{0.46, 0.46}, ReplyMode::kAllMatches,
          [&](const IndexPlatform::QueryOutcome& o) {
            EXPECT_TRUE(o.complete);
            completed += 1;
            total_bytes += o.query_bytes;
            for (std::uint64_t id : o.results) ids->insert(id);
          });
    }
    s.sim.run();
    EXPECT_EQ(completed, 12);
    // Per-outcome query_messages charges every rider of a shared wire
    // message, so the physical count comes from the traffic counter.
    EXPECT_EQ(total_bytes, s.platform->query_traffic().bytes);
    *bytes = total_bytes;
    *msgs = s.platform->query_traffic().messages;
    *merged = s.platform->coalesced_messages();
  };
  std::set<std::uint64_t> ids_off;
  std::set<std::uint64_t> ids_on;
  std::uint64_t bytes_off = 0;
  std::uint64_t bytes_on = 0;
  std::uint64_t msgs_off = 0;
  std::uint64_t msgs_on = 0;
  std::uint64_t merged_off = 0;
  std::uint64_t merged_on = 0;
  run(0, &ids_off, &bytes_off, &msgs_off, &merged_off);
  run(3 * kMillisecond, &ids_on, &bytes_on, &msgs_on, &merged_on);
  EXPECT_EQ(ids_on, ids_off);
  EXPECT_EQ(merged_off, 0u);
  EXPECT_GT(merged_on, 0u) << "window never merged concurrent episodes";
  // Merging only ever removes per-message headers.
  EXPECT_LT(bytes_on, bytes_off);
  EXPECT_LT(msgs_on, msgs_off);
}

}  // namespace
}  // namespace lmk
