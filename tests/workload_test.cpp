// Tests for the workload generators: the Table 1 synthetic datasets and
// the TREC-like corpus (Table 2 statistics, topical structure, queries).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "workload/corpus.hpp"
#include "workload/open_loop.hpp"
#include "workload/synthetic.hpp"

namespace lmk {
namespace {

TEST(Synthetic, RespectsConfigShape) {
  Rng rng(1);
  SyntheticConfig cfg;
  cfg.objects = 500;
  cfg.dims = 20;
  cfg.clusters = 5;
  auto data = generate_clustered(cfg, rng);
  EXPECT_EQ(data.points.size(), 500u);
  EXPECT_EQ(data.centers.size(), 5u);
  EXPECT_EQ(data.assignments.size(), 500u);
  for (const auto& p : data.points) {
    ASSERT_EQ(p.size(), 20u);
    for (double v : p) {
      EXPECT_GE(v, cfg.range_lo);
      EXPECT_LE(v, cfg.range_hi);
    }
  }
}

TEST(Synthetic, PointsClusterAroundTheirCenters) {
  Rng rng(2);
  SyntheticConfig cfg;
  cfg.objects = 2000;
  cfg.dims = 30;
  cfg.clusters = 4;
  cfg.deviation = 5;
  auto data = generate_clustered(cfg, rng);
  L2Space l2;
  // A point should be far closer to its own centre than to the others
  // (deviation 5 over 30 dims => expected distance ~ 5*sqrt(30) ≈ 27,
  // while centres are ~100+ apart on average).
  int misassigned = 0;
  for (std::size_t i = 0; i < data.points.size(); ++i) {
    double own = l2.distance(data.points[i], data.centers[data.assignments[i]]);
    for (std::size_t c = 0; c < data.centers.size(); ++c) {
      if (c == data.assignments[i]) continue;
      if (l2.distance(data.points[i], data.centers[c]) < own) {
        ++misassigned;
        break;
      }
    }
  }
  EXPECT_LT(misassigned, 40);  // < 2%
}

TEST(Synthetic, PerDimensionDeviationMatches) {
  Rng rng(3);
  SyntheticConfig cfg;
  cfg.objects = 20000;
  cfg.dims = 4;
  cfg.clusters = 1;
  cfg.deviation = 10;
  cfg.range_lo = -1000;  // wide range: clamping never kicks in
  cfg.range_hi = 1000;
  auto data = generate_clustered(cfg, rng);
  Accumulator acc;
  for (const auto& p : data.points) {
    acc.add(p[0] - data.centers[0][0]);
  }
  EXPECT_NEAR(acc.stddev(), 10.0, 0.3);
  EXPECT_NEAR(acc.mean(), 0.0, 0.3);
}

TEST(Synthetic, QueriesFollowDatasetDistribution) {
  Rng rng(4);
  SyntheticConfig cfg;
  cfg.objects = 1000;
  cfg.dims = 10;
  cfg.clusters = 3;
  cfg.deviation = 2;
  auto data = generate_clustered(cfg, rng);
  auto queries = generate_queries(cfg, data, 200, rng);
  EXPECT_EQ(queries.size(), 200u);
  L2Space l2;
  // Every query lies near one of the dataset's cluster centres.
  for (const auto& q : queries) {
    double best = 1e18;
    for (const auto& c : data.centers) {
      best = std::min(best, l2.distance(q, c));
    }
    EXPECT_LT(best, 2.0 * cfg.deviation * std::sqrt(10.0) + 1e-9);
  }
}

TEST(Synthetic, MaxTheoreticalDistanceMatchesPaper) {
  SyntheticConfig cfg;  // paper defaults: 100 dims, range [0,100]
  EXPECT_DOUBLE_EQ(max_theoretical_distance(cfg), 1000.0);
}

TEST(Synthetic, DeterministicForSeed) {
  SyntheticConfig cfg;
  cfg.objects = 100;
  cfg.dims = 5;
  Rng a(7), b(7);
  auto da = generate_clustered(cfg, a);
  auto db = generate_clustered(cfg, b);
  EXPECT_EQ(da.points, db.points);
}

// ----- corpus -----

CorpusConfig small_corpus_config() {
  CorpusConfig cfg;
  cfg.documents = 2000;
  cfg.vocabulary = 20000;
  cfg.topics = 20;
  return cfg;
}

TEST(Corpus, DocumentCountAndSparsity) {
  Rng rng(8);
  Corpus corpus(small_corpus_config(), rng);
  EXPECT_EQ(corpus.documents().size(), 2000u);
  for (const auto& d : corpus.documents()) {
    EXPECT_GE(d.term_count(), 1u);
    EXPECT_LE(d.term_count(), 676u);
  }
}

TEST(Corpus, VectorSizeDistributionMatchesTable2Shape) {
  Rng rng(9);
  CorpusConfig cfg = small_corpus_config();
  cfg.documents = 8000;
  Corpus corpus(cfg, rng);
  auto sizes = corpus.vector_sizes();
  double med = percentile(sizes, 50);
  double p95 = percentile(sizes, 95);
  double mean = 0;
  for (double s : sizes) mean += s;
  mean /= static_cast<double>(sizes.size());
  // Table 2: median 146, 95th 293, mean 155.4 — check within a loose
  // band (the generator is matched in shape, not digit-for-digit).
  EXPECT_NEAR(med, 146, 40);
  EXPECT_NEAR(p95, 293, 90);
  EXPECT_NEAR(mean, 155.4, 40);
}

TEST(Corpus, StopWordsNeverAppear) {
  Rng rng(10);
  CorpusConfig cfg = small_corpus_config();
  Corpus corpus(cfg, rng);
  for (const auto& d : corpus.documents()) {
    for (const auto& e : d.entries()) {
      EXPECT_GE(e.term, cfg.stop_words);
    }
  }
}

TEST(Corpus, TopicAndStoryStructureShapeDistances) {
  Rng rng(11);
  Corpus corpus(small_corpus_config(), rng);
  AngularSpace ang;
  const auto& docs = corpus.documents();
  const auto& topics = corpus.topics();
  const auto& stories = corpus.stories();
  Accumulator same_story, same_topic, diff;
  Rng pick(12);
  for (int t = 0; t < 30000; ++t) {
    std::size_t i = pick.below(docs.size());
    std::size_t j = pick.below(docs.size());
    if (i == j) continue;
    double d = ang.distance(docs[i], docs[j]);
    if (topics[i] == topics[j] && stories[i] == stories[j]) {
      same_story.add(d);
    } else if (topics[i] == topics[j]) {
      same_topic.add(d);
    } else {
      diff.add(d);
    }
  }
  ASSERT_GT(same_story.count(), 10u);
  ASSERT_GT(same_topic.count(), 100u);
  ASSERT_GT(diff.count(), 100u);
  // TF/IDF text geometry: most pairs are near-orthogonal, but the
  // two-level structure must be clearly visible in the means.
  EXPECT_LT(same_story.mean(), diff.mean() - 0.12);
  EXPECT_LT(same_topic.mean(), diff.mean() - 0.03);
}

TEST(Corpus, QueriesAreShortAndTopical) {
  Rng rng(13);
  Corpus corpus(small_corpus_config(), rng);
  auto queries = corpus.make_queries(500, 3.5, rng);
  EXPECT_EQ(queries.size(), 500u);
  double mean_terms = 0;
  for (const auto& q : queries) {
    EXPECT_GE(q.term_count(), 1u);
    mean_terms += static_cast<double>(q.term_count());
  }
  mean_terms /= 500.0;
  EXPECT_NEAR(mean_terms, 3.5, 0.8);
}

TEST(Corpus, QueriesMatchSomeDocuments) {
  Rng rng(14);
  Corpus corpus(small_corpus_config(), rng);
  auto queries = corpus.make_queries(30, 3.5, rng);
  AngularSpace ang;
  int queries_with_neighbors = 0;
  for (const auto& q : queries) {
    double best = 10, sum = 0;
    for (const auto& d : corpus.documents()) {
      double x = ang.distance(q, d);
      best = std::min(best, x);
      sum += x;
    }
    double mean = sum / static_cast<double>(corpus.documents().size());
    // The query's story gives it documents clearly closer than the bulk
    // of the corpus — that is what makes its 10-NN set meaningful.
    if (best < mean - 0.08) ++queries_with_neighbors;
  }
  EXPECT_GT(queries_with_neighbors, 24);
}

TEST(Corpus, IdfWeightingDownweightsCommonTerms) {
  Rng rng(15);
  CorpusConfig cfg = small_corpus_config();
  Corpus corpus(cfg, rng);
  // Find a very common and a rare term by scanning document frequencies.
  std::unordered_map<std::uint32_t, int> df;
  for (const auto& d : corpus.documents()) {
    for (const auto& e : d.entries()) ++df[e.term];
  }
  int max_df = 0, min_df = 1 << 30;
  // lmk-lint: iteration-order-independent min/max are commutative
  for (const auto& [t, c] : df) {
    max_df = std::max(max_df, c);
    min_df = std::min(min_df, c);
  }
  EXPECT_GT(max_df, 50);  // Zipf head is genuinely common
  EXPECT_LE(min_df, 3);   // Zipf tail is genuinely rare
}

TEST(Corpus, DeterministicForSeed) {
  CorpusConfig cfg = small_corpus_config();
  cfg.documents = 300;
  Rng a(20), b(20);
  Corpus ca(cfg, a), cb(cfg, b);
  ASSERT_EQ(ca.documents().size(), cb.documents().size());
  for (std::size_t i = 0; i < ca.documents().size(); ++i) {
    ASSERT_EQ(ca.documents()[i].term_count(),
              cb.documents()[i].term_count());
  }
}

// ----- synthetic stream (the never-materialized flagship corpus) -----

TEST(SyntheticStream, PointsAreDeterministicAndOrderIndependent) {
  SyntheticConfig cfg;
  cfg.objects = 400;
  cfg.dims = 12;
  SyntheticStream sa(cfg, 5), sb(cfg, 5);
  // Walk one stream forward and the other backward: per-point RNG
  // derivation makes access order irrelevant.
  std::vector<DenseVector> reverse(cfg.objects);
  for (std::uint64_t i = cfg.objects; i-- > 0;) {
    reverse[i] = sb.point(i);
  }
  for (std::uint64_t i = 0; i < cfg.objects; ++i) {
    EXPECT_EQ(sa.point(i), reverse[i]);
  }
  SyntheticStream sc(cfg, 6);
  EXPECT_NE(sa.point(0), sc.point(0));  // seed matters
}

TEST(SyntheticStream, PointIntoMatchesPointAndRespectsRange) {
  SyntheticConfig cfg;
  cfg.objects = 100;
  cfg.dims = 9;
  SyntheticStream s(cfg, 11);
  DenseVector buf(cfg.dims);
  for (std::uint64_t i = 0; i < cfg.objects; ++i) {
    s.point_into(i, buf);
    EXPECT_EQ(buf, s.point(i));
    for (double v : buf) {
      EXPECT_GE(v, cfg.range_lo);
      EXPECT_LE(v, cfg.range_hi);
    }
  }
}

TEST(SyntheticStream, PointsClusterAroundDeclaredCenters) {
  SyntheticConfig cfg;
  cfg.objects = 2000;
  cfg.dims = 30;
  cfg.clusters = 4;
  cfg.deviation = 5;
  SyntheticStream s(cfg, 13);
  L2Space l2;
  int misassigned = 0;
  for (std::uint64_t i = 0; i < cfg.objects; ++i) {
    DenseVector p = s.point(i);
    double own = l2.distance(p, s.centers()[s.cluster_of(i)]);
    for (std::size_t c = 0; c < s.centers().size(); ++c) {
      if (c == s.cluster_of(i)) continue;
      if (l2.distance(p, s.centers()[c]) < own) {
        ++misassigned;
        break;
      }
    }
  }
  EXPECT_LT(misassigned, 40);  // < 2%, as for the batch generator
}

TEST(SyntheticStream, QueryNearTargetsItsTopicCluster) {
  SyntheticConfig cfg;
  cfg.objects = 100;
  cfg.dims = 20;
  cfg.clusters = 5;
  cfg.deviation = 4;
  SyntheticStream s(cfg, 17);
  L2Space l2;
  for (std::uint32_t topic = 0; topic < 5; ++topic) {
    DenseVector q = s.query_near(topic, /*salt=*/topic * 31);
    double own = l2.distance(q, s.centers()[topic]);
    for (std::size_t c = 0; c < s.centers().size(); ++c) {
      if (c == topic) continue;
      EXPECT_LT(own, l2.distance(q, s.centers()[c]));
    }
  }
  // Distinct salts give distinct foci for the same topic.
  EXPECT_NE(s.query_near(0, 1), s.query_near(0, 2));
}

// ----- open-loop arrival stream -----

TEST(OpenLoop, ReproducibleFromConfigSeed) {
  OpenLoopConfig cfg;
  cfg.count = 5000;
  cfg.seed = 33;
  auto a = open_loop_schedule(cfg);
  auto b = open_loop_schedule(cfg);
  EXPECT_EQ(a, b);
  cfg.seed = 34;
  EXPECT_NE(open_loop_schedule(cfg), a);
}

TEST(OpenLoop, ByteIdenticalAcrossThreadCounts) {
  // The schedule is generated sequentially by contract: LMK_THREADS
  // must not be able to change a single arrival.
  OpenLoopConfig cfg;
  cfg.count = 20000;
  cfg.seed = 42;
  set_threads(1);
  auto t1 = open_loop_schedule(cfg);
  set_threads(8);
  auto t8 = open_loop_schedule(cfg);
  set_threads(0);
  ASSERT_EQ(t1.size(), t8.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    // Bitwise, not approximate: the determinism contract is on bytes.
    EXPECT_EQ(t1[i].at_sec, t8[i].at_sec);
    EXPECT_EQ(t1[i].topic, t8[i].topic);
  }
}

TEST(OpenLoop, ArrivalsAreSortedWithPoissonRate) {
  OpenLoopConfig cfg;
  cfg.arrivals_per_sec = 25.0;
  cfg.count = 50000;
  cfg.seed = 9;
  auto sched = open_loop_schedule(cfg);
  ASSERT_EQ(sched.size(), cfg.count);
  for (std::size_t i = 1; i < sched.size(); ++i) {
    EXPECT_GE(sched[i].at_sec, sched[i - 1].at_sec);
  }
  // Mean interarrival 1/λ: the stream's span is count/λ ± a few %.
  double span = sched.back().at_sec;
  double expect = static_cast<double>(cfg.count) / cfg.arrivals_per_sec;
  EXPECT_NEAR(span, expect, 0.05 * expect);
}

TEST(OpenLoop, ZipfHeadDominatesTopicHistogram) {
  OpenLoopConfig cfg;
  cfg.topics = 10;
  cfg.zipf_s = 0.9;
  cfg.count = 30000;
  cfg.seed = 12;
  auto sched = open_loop_schedule(cfg);
  auto hist = topic_histogram(sched, cfg.topics);
  ASSERT_EQ(hist.size(), cfg.topics);
  std::uint64_t total = 0;
  for (auto c : hist) total += c;
  EXPECT_EQ(total, cfg.count);
  // Zipf(0.9) over 10 topics: topic 0 holds ~25% of the mass and every
  // rank beats the next one in expectation.
  EXPECT_GT(hist[0], hist[9] * 3);
  EXPECT_GT(static_cast<double>(hist[0]), 0.15 * static_cast<double>(total));
  std::uint64_t head3 = hist[0] + hist[1] + hist[2];
  EXPECT_GT(static_cast<double>(head3), 0.45 * static_cast<double>(total));
}

TEST(OpenLoop, TopicsStayInRange) {
  OpenLoopConfig cfg;
  cfg.topics = 7;
  cfg.count = 2000;
  for (const Arrival& a : open_loop_schedule(cfg)) {
    EXPECT_LT(a.topic, cfg.topics);
    EXPECT_GE(a.at_sec, 0.0);
  }
}

}  // namespace
}  // namespace lmk
