// Tests for the workload generators: the Table 1 synthetic datasets and
// the TREC-like corpus (Table 2 statistics, topical structure, queries).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/stats.hpp"
#include "workload/corpus.hpp"
#include "workload/synthetic.hpp"

namespace lmk {
namespace {

TEST(Synthetic, RespectsConfigShape) {
  Rng rng(1);
  SyntheticConfig cfg;
  cfg.objects = 500;
  cfg.dims = 20;
  cfg.clusters = 5;
  auto data = generate_clustered(cfg, rng);
  EXPECT_EQ(data.points.size(), 500u);
  EXPECT_EQ(data.centers.size(), 5u);
  EXPECT_EQ(data.assignments.size(), 500u);
  for (const auto& p : data.points) {
    ASSERT_EQ(p.size(), 20u);
    for (double v : p) {
      EXPECT_GE(v, cfg.range_lo);
      EXPECT_LE(v, cfg.range_hi);
    }
  }
}

TEST(Synthetic, PointsClusterAroundTheirCenters) {
  Rng rng(2);
  SyntheticConfig cfg;
  cfg.objects = 2000;
  cfg.dims = 30;
  cfg.clusters = 4;
  cfg.deviation = 5;
  auto data = generate_clustered(cfg, rng);
  L2Space l2;
  // A point should be far closer to its own centre than to the others
  // (deviation 5 over 30 dims => expected distance ~ 5*sqrt(30) ≈ 27,
  // while centres are ~100+ apart on average).
  int misassigned = 0;
  for (std::size_t i = 0; i < data.points.size(); ++i) {
    double own = l2.distance(data.points[i], data.centers[data.assignments[i]]);
    for (std::size_t c = 0; c < data.centers.size(); ++c) {
      if (c == data.assignments[i]) continue;
      if (l2.distance(data.points[i], data.centers[c]) < own) {
        ++misassigned;
        break;
      }
    }
  }
  EXPECT_LT(misassigned, 40);  // < 2%
}

TEST(Synthetic, PerDimensionDeviationMatches) {
  Rng rng(3);
  SyntheticConfig cfg;
  cfg.objects = 20000;
  cfg.dims = 4;
  cfg.clusters = 1;
  cfg.deviation = 10;
  cfg.range_lo = -1000;  // wide range: clamping never kicks in
  cfg.range_hi = 1000;
  auto data = generate_clustered(cfg, rng);
  Accumulator acc;
  for (const auto& p : data.points) {
    acc.add(p[0] - data.centers[0][0]);
  }
  EXPECT_NEAR(acc.stddev(), 10.0, 0.3);
  EXPECT_NEAR(acc.mean(), 0.0, 0.3);
}

TEST(Synthetic, QueriesFollowDatasetDistribution) {
  Rng rng(4);
  SyntheticConfig cfg;
  cfg.objects = 1000;
  cfg.dims = 10;
  cfg.clusters = 3;
  cfg.deviation = 2;
  auto data = generate_clustered(cfg, rng);
  auto queries = generate_queries(cfg, data, 200, rng);
  EXPECT_EQ(queries.size(), 200u);
  L2Space l2;
  // Every query lies near one of the dataset's cluster centres.
  for (const auto& q : queries) {
    double best = 1e18;
    for (const auto& c : data.centers) {
      best = std::min(best, l2.distance(q, c));
    }
    EXPECT_LT(best, 2.0 * cfg.deviation * std::sqrt(10.0) + 1e-9);
  }
}

TEST(Synthetic, MaxTheoreticalDistanceMatchesPaper) {
  SyntheticConfig cfg;  // paper defaults: 100 dims, range [0,100]
  EXPECT_DOUBLE_EQ(max_theoretical_distance(cfg), 1000.0);
}

TEST(Synthetic, DeterministicForSeed) {
  SyntheticConfig cfg;
  cfg.objects = 100;
  cfg.dims = 5;
  Rng a(7), b(7);
  auto da = generate_clustered(cfg, a);
  auto db = generate_clustered(cfg, b);
  EXPECT_EQ(da.points, db.points);
}

// ----- corpus -----

CorpusConfig small_corpus_config() {
  CorpusConfig cfg;
  cfg.documents = 2000;
  cfg.vocabulary = 20000;
  cfg.topics = 20;
  return cfg;
}

TEST(Corpus, DocumentCountAndSparsity) {
  Rng rng(8);
  Corpus corpus(small_corpus_config(), rng);
  EXPECT_EQ(corpus.documents().size(), 2000u);
  for (const auto& d : corpus.documents()) {
    EXPECT_GE(d.term_count(), 1u);
    EXPECT_LE(d.term_count(), 676u);
  }
}

TEST(Corpus, VectorSizeDistributionMatchesTable2Shape) {
  Rng rng(9);
  CorpusConfig cfg = small_corpus_config();
  cfg.documents = 8000;
  Corpus corpus(cfg, rng);
  auto sizes = corpus.vector_sizes();
  double med = percentile(sizes, 50);
  double p95 = percentile(sizes, 95);
  double mean = 0;
  for (double s : sizes) mean += s;
  mean /= static_cast<double>(sizes.size());
  // Table 2: median 146, 95th 293, mean 155.4 — check within a loose
  // band (the generator is matched in shape, not digit-for-digit).
  EXPECT_NEAR(med, 146, 40);
  EXPECT_NEAR(p95, 293, 90);
  EXPECT_NEAR(mean, 155.4, 40);
}

TEST(Corpus, StopWordsNeverAppear) {
  Rng rng(10);
  CorpusConfig cfg = small_corpus_config();
  Corpus corpus(cfg, rng);
  for (const auto& d : corpus.documents()) {
    for (const auto& e : d.entries()) {
      EXPECT_GE(e.term, cfg.stop_words);
    }
  }
}

TEST(Corpus, TopicAndStoryStructureShapeDistances) {
  Rng rng(11);
  Corpus corpus(small_corpus_config(), rng);
  AngularSpace ang;
  const auto& docs = corpus.documents();
  const auto& topics = corpus.topics();
  const auto& stories = corpus.stories();
  Accumulator same_story, same_topic, diff;
  Rng pick(12);
  for (int t = 0; t < 30000; ++t) {
    std::size_t i = pick.below(docs.size());
    std::size_t j = pick.below(docs.size());
    if (i == j) continue;
    double d = ang.distance(docs[i], docs[j]);
    if (topics[i] == topics[j] && stories[i] == stories[j]) {
      same_story.add(d);
    } else if (topics[i] == topics[j]) {
      same_topic.add(d);
    } else {
      diff.add(d);
    }
  }
  ASSERT_GT(same_story.count(), 10u);
  ASSERT_GT(same_topic.count(), 100u);
  ASSERT_GT(diff.count(), 100u);
  // TF/IDF text geometry: most pairs are near-orthogonal, but the
  // two-level structure must be clearly visible in the means.
  EXPECT_LT(same_story.mean(), diff.mean() - 0.12);
  EXPECT_LT(same_topic.mean(), diff.mean() - 0.03);
}

TEST(Corpus, QueriesAreShortAndTopical) {
  Rng rng(13);
  Corpus corpus(small_corpus_config(), rng);
  auto queries = corpus.make_queries(500, 3.5, rng);
  EXPECT_EQ(queries.size(), 500u);
  double mean_terms = 0;
  for (const auto& q : queries) {
    EXPECT_GE(q.term_count(), 1u);
    mean_terms += static_cast<double>(q.term_count());
  }
  mean_terms /= 500.0;
  EXPECT_NEAR(mean_terms, 3.5, 0.8);
}

TEST(Corpus, QueriesMatchSomeDocuments) {
  Rng rng(14);
  Corpus corpus(small_corpus_config(), rng);
  auto queries = corpus.make_queries(30, 3.5, rng);
  AngularSpace ang;
  int queries_with_neighbors = 0;
  for (const auto& q : queries) {
    double best = 10, sum = 0;
    for (const auto& d : corpus.documents()) {
      double x = ang.distance(q, d);
      best = std::min(best, x);
      sum += x;
    }
    double mean = sum / static_cast<double>(corpus.documents().size());
    // The query's story gives it documents clearly closer than the bulk
    // of the corpus — that is what makes its 10-NN set meaningful.
    if (best < mean - 0.08) ++queries_with_neighbors;
  }
  EXPECT_GT(queries_with_neighbors, 24);
}

TEST(Corpus, IdfWeightingDownweightsCommonTerms) {
  Rng rng(15);
  CorpusConfig cfg = small_corpus_config();
  Corpus corpus(cfg, rng);
  // Find a very common and a rare term by scanning document frequencies.
  std::unordered_map<std::uint32_t, int> df;
  for (const auto& d : corpus.documents()) {
    for (const auto& e : d.entries()) ++df[e.term];
  }
  int max_df = 0, min_df = 1 << 30;
  for (const auto& [t, c] : df) {
    max_df = std::max(max_df, c);
    min_df = std::min(min_df, c);
  }
  EXPECT_GT(max_df, 50);  // Zipf head is genuinely common
  EXPECT_LE(min_df, 3);   // Zipf tail is genuinely rare
}

TEST(Corpus, DeterministicForSeed) {
  CorpusConfig cfg = small_corpus_config();
  cfg.documents = 300;
  Rng a(20), b(20);
  Corpus ca(cfg, a), cb(cfg, b);
  ASSERT_EQ(ca.documents().size(), cb.documents().size());
  for (std::size_t i = 0; i < ca.documents().size(); ++i) {
    ASSERT_EQ(ca.documents()[i].term_count(),
              cb.documents()[i].term_count());
  }
}

}  // namespace
}  // namespace lmk
