// Unit + property tests for the metric-space framework: Lp metrics,
// angular distance, edit distance, Hausdorff, the bounded adapter, and
// metric-axiom properties on random inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>
#include <string>

#include "common/rng.hpp"
#include "metric/dense.hpp"
#include "metric/edit_distance.hpp"
#include "metric/hausdorff.hpp"
#include "metric/jaccard.hpp"
#include "metric/metric_space.hpp"
#include "metric/sparse_vector.hpp"

namespace lmk {
namespace {

static_assert(MetricSpace<L2Space>);
static_assert(MetricSpace<L1Space>);
static_assert(MetricSpace<LInfSpace>);
static_assert(MetricSpace<AngularSpace>);
static_assert(MetricSpace<EditDistanceSpace>);
static_assert(MetricSpace<HausdorffSpace>);
static_assert(MetricSpace<BoundedSpace<L2Space>>);

TEST(Lp, KnownDistances) {
  DenseVector a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(L2Space{}.distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(L1Space{}.distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(LInfSpace{}.distance(a, b), 4.0);
}

TEST(Lp, ZeroForIdenticalPoints) {
  DenseVector a{1.5, -2.5, 3.0};
  EXPECT_EQ(L2Space{}.distance(a, a), 0.0);
  EXPECT_EQ(L1Space{}.distance(a, a), 0.0);
  EXPECT_EQ(LInfSpace{}.distance(a, a), 0.0);
}

TEST(Lp, NormOrdering) {
  // L∞ <= L2 <= L1 always.
  Rng rng(1);
  for (int t = 0; t < 200; ++t) {
    DenseVector a(8), b(8);
    for (int d = 0; d < 8; ++d) {
      a[d] = rng.uniform(-10, 10);
      b[d] = rng.uniform(-10, 10);
    }
    double linf = LInfSpace{}.distance(a, b);
    double l2 = L2Space{}.distance(a, b);
    double l1 = L1Space{}.distance(a, b);
    EXPECT_LE(linf, l2 + 1e-12);
    EXPECT_LE(l2, l1 + 1e-12);
  }
}

template <typename S>
void check_metric_axioms(const S& s, const typename S::Point& x,
                         const typename S::Point& y,
                         const typename S::Point& z) {
  double dxy = s.distance(x, y);
  double dyx = s.distance(y, x);
  double dxz = s.distance(x, z);
  double dyz = s.distance(y, z);
  EXPECT_GE(dxy, 0.0);
  EXPECT_NEAR(dxy, dyx, 1e-9 * (1.0 + dxy));
  // acos amplifies rounding near cos = 1 (acos(1-eps) ~ sqrt(2 eps)), so
  // self-distance of angular spaces is ~1e-8 rather than exactly 0.
  EXPECT_NEAR(s.distance(x, x), 0.0, 1e-7);
  // Triangle inequality with a small tolerance for floating point.
  EXPECT_LE(dxz, dxy + dyz + 1e-9 * (1.0 + dxz));
}

TEST(MetricAxioms, L2RandomTriples) {
  Rng rng(2);
  L2Space s;
  for (int t = 0; t < 200; ++t) {
    DenseVector x(5), y(5), z(5);
    for (int d = 0; d < 5; ++d) {
      x[d] = rng.normal(0, 3);
      y[d] = rng.normal(0, 3);
      z[d] = rng.normal(0, 3);
    }
    check_metric_axioms(s, x, y, z);
  }
}

TEST(MetricAxioms, L1RandomTriples) {
  Rng rng(3);
  L1Space s;
  for (int t = 0; t < 200; ++t) {
    DenseVector x(4), y(4), z(4);
    for (int d = 0; d < 4; ++d) {
      x[d] = rng.uniform(-5, 5);
      y[d] = rng.uniform(-5, 5);
      z[d] = rng.uniform(-5, 5);
    }
    check_metric_axioms(s, x, y, z);
  }
}

SparseVector random_sparse(Rng& rng, std::uint32_t vocab, int max_terms) {
  std::vector<SparseEntry> e;
  int n = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(max_terms)));
  for (int i = 0; i < n; ++i) {
    e.push_back(SparseEntry{static_cast<std::uint32_t>(rng.below(vocab)),
                            rng.uniform(0.1, 5.0)});
  }
  return SparseVector(std::move(e));
}

TEST(MetricAxioms, AngularRandomTriples) {
  Rng rng(4);
  AngularSpace s;
  for (int t = 0; t < 200; ++t) {
    auto x = random_sparse(rng, 50, 8);
    auto y = random_sparse(rng, 50, 8);
    auto z = random_sparse(rng, 50, 8);
    check_metric_axioms(s, x, y, z);
  }
}

TEST(MetricAxioms, EditDistanceRandomTriples) {
  Rng rng(5);
  EditDistanceSpace s;
  auto random_string = [&rng]() {
    std::string out;
    int n = static_cast<int>(rng.below(12));
    for (int i = 0; i < n; ++i) {
      out.push_back(static_cast<char>('a' + rng.below(4)));
    }
    return out;
  };
  for (int t = 0; t < 100; ++t) {
    check_metric_axioms(s, random_string(), random_string(), random_string());
  }
}

TEST(MetricAxioms, HausdorffRandomTriples) {
  Rng rng(6);
  HausdorffSpace s;
  auto random_set = [&rng]() {
    PointSet out;
    int n = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < n; ++i) {
      out.push_back(Point2D{rng.uniform(0, 10), rng.uniform(0, 10)});
    }
    return out;
  };
  for (int t = 0; t < 100; ++t) {
    check_metric_axioms(s, random_set(), random_set(), random_set());
  }
}

// ----- sparse vectors -----

TEST(SparseVector, SortsAndMergesDuplicates) {
  SparseVector v({{5, 1.0}, {2, 2.0}, {5, 3.0}});
  ASSERT_EQ(v.term_count(), 2u);
  EXPECT_EQ(v.entries()[0].term, 2u);
  EXPECT_EQ(v.entries()[1].term, 5u);
  EXPECT_DOUBLE_EQ(v.entries()[1].weight, 4.0);
}

TEST(SparseVector, DropsNonPositive) {
  SparseVector v({{1, 0.0}, {2, 1.0}, {3, -1.0}, {3, 0.5}});
  ASSERT_EQ(v.term_count(), 1u);
  EXPECT_EQ(v.entries()[0].term, 2u);
}

TEST(SparseVector, DotDisjointIsZero) {
  SparseVector a({{1, 1.0}, {3, 2.0}});
  SparseVector b({{2, 1.0}, {4, 2.0}});
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
}

TEST(SparseVector, DotAndNorm) {
  SparseVector a({{1, 3.0}, {2, 4.0}});
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  SparseVector b({{2, 2.0}});
  EXPECT_DOUBLE_EQ(a.dot(b), 8.0);
}

TEST(SparseVector, AddScaledMerges) {
  SparseVector a({{1, 1.0}});
  SparseVector b({{1, 2.0}, {2, 4.0}});
  a.add_scaled(b, 0.5);
  ASSERT_EQ(a.term_count(), 2u);
  EXPECT_DOUBLE_EQ(a.entries()[0].weight, 2.0);
  EXPECT_DOUBLE_EQ(a.entries()[1].weight, 2.0);
}

TEST(Angular, IdenticalDirectionIsZero) {
  SparseVector a({{1, 1.0}, {2, 2.0}});
  SparseVector b({{1, 2.0}, {2, 4.0}});  // same direction, scaled
  EXPECT_NEAR(AngularSpace{}.distance(a, b), 0.0, 1e-7);
}

TEST(Angular, OrthogonalIsHalfPi) {
  SparseVector a({{1, 1.0}});
  SparseVector b({{2, 1.0}});
  EXPECT_NEAR(AngularSpace{}.distance(a, b), std::numbers::pi / 2, 1e-12);
}

TEST(Angular, EmptyVectorConventions) {
  SparseVector zero;
  SparseVector v({{1, 1.0}});
  EXPECT_DOUBLE_EQ(AngularSpace{}.distance(zero, zero), 0.0);
  EXPECT_DOUBLE_EQ(AngularSpace{}.distance(zero, v), std::numbers::pi / 2);
}

// ----- edit distance -----

TEST(EditDistance, KnownValues) {
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("same", "same"), 0u);
  EXPECT_EQ(edit_distance("flaw", "lawn"), 2u);
}

TEST(EditDistance, SymmetricOnRandomStrings) {
  Rng rng(7);
  for (int t = 0; t < 100; ++t) {
    std::string a, b;
    for (std::uint64_t i = rng.below(10); i > 0; --i) {
      a.push_back(static_cast<char>('a' + rng.below(3)));
    }
    for (std::uint64_t i = rng.below(10); i > 0; --i) {
      b.push_back(static_cast<char>('a' + rng.below(3)));
    }
    EXPECT_EQ(edit_distance(a, b), edit_distance(b, a));
  }
}

TEST(EditDistanceBounded, MatchesExactWithinBound) {
  Rng rng(8);
  for (int t = 0; t < 200; ++t) {
    std::string a, b;
    for (std::uint64_t i = rng.below(15); i > 0; --i) {
      a.push_back(static_cast<char>('a' + rng.below(4)));
    }
    for (std::uint64_t i = rng.below(15); i > 0; --i) {
      b.push_back(static_cast<char>('a' + rng.below(4)));
    }
    unsigned exact = edit_distance(a, b);
    for (unsigned bound : {0u, 1u, 3u, 8u, 20u}) {
      unsigned got = edit_distance_bounded(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(got, exact) << a << " vs " << b << " bound " << bound;
      } else {
        EXPECT_GT(got, bound);
      }
    }
  }
}

// ----- Hausdorff -----

TEST(Hausdorff, IdenticalSetsZero) {
  PointSet a{{0, 0}, {1, 1}};
  EXPECT_DOUBLE_EQ(hausdorff_distance(a, a), 0.0);
}

TEST(Hausdorff, SubsetAsymmetryHandled) {
  PointSet a{{0, 0}};
  PointSet b{{0, 0}, {3, 4}};
  // Directed distance a->b is 0, b->a is 5; symmetric H is 5.
  EXPECT_DOUBLE_EQ(hausdorff_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(hausdorff_distance(b, a), 5.0);
}

TEST(Hausdorff, TranslationDistance) {
  PointSet a{{0, 0}, {1, 0}};
  PointSet b{{0, 2}, {1, 2}};
  EXPECT_DOUBLE_EQ(hausdorff_distance(a, b), 2.0);
}

namespace {

// Unpruned reference: the textbook max-min double loop, no early break.
double hausdorff_reference(const PointSet& a, const PointSet& b) {
  auto directed = [](const PointSet& x, const PointSet& y) {
    double worst = 0;
    for (const Point2D& p : x) {
      double best = std::numeric_limits<double>::infinity();
      for (const Point2D& q : y) {
        double dx = p[0] - q[0];
        double dy = p[1] - q[1];
        best = std::min(best, dx * dx + dy * dy);
      }
      worst = std::max(worst, best);
    }
    return std::sqrt(worst);
  };
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return 1e18;
  return std::max(directed(a, b), directed(b, a));
}

}  // namespace

TEST(Hausdorff, PrunedMatchesUnprunedReference) {
  // The production directed() breaks its inner loop once the running
  // min drops to the running max (the pruned point cannot raise the
  // directed distance). Random point sets across sizes and spreads must
  // give bit-identical results to the unpruned scan.
  Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    auto make_set = [&](std::size_t n, double spread) {
      PointSet s;
      s.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        s.push_back({rng.uniform(-spread, spread),
                     rng.uniform(-spread, spread)});
      }
      return s;
    };
    std::size_t na = 1 + rng.below(24);
    std::size_t nb = 1 + rng.below(24);
    // Mixed spreads produce both tight clusters (prunes constantly) and
    // far-apart sets (prunes rarely).
    PointSet a = make_set(na, trial % 3 == 0 ? 0.5 : 50.0);
    PointSet b = make_set(nb, trial % 2 == 0 ? 0.5 : 50.0);
    double expect = hausdorff_reference(a, b);
    EXPECT_DOUBLE_EQ(hausdorff_distance(a, b), expect) << "trial " << trial;
    // Duplicated points force exact zero minima mid-scan.
    PointSet ab = a;
    ab.insert(ab.end(), b.begin(), b.end());
    EXPECT_DOUBLE_EQ(hausdorff_distance(ab, a), hausdorff_reference(ab, a));
  }
}

// ----- Jaccard -----

static_assert(MetricSpace<JaccardSpace>);

TEST(Jaccard, SortsAndDeduplicates) {
  ItemSet s({5, 1, 5, 3, 1});
  EXPECT_EQ(s.items(), (std::vector<std::uint32_t>{1, 3, 5}));
}

TEST(Jaccard, KnownDistances) {
  ItemSet a({1, 2, 3}), b({2, 3, 4}), c({7, 8});
  // |a∩b| = 2, |a∪b| = 4 -> d = 0.5.
  EXPECT_DOUBLE_EQ(jaccard_distance(a, b), 0.5);
  EXPECT_DOUBLE_EQ(jaccard_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(jaccard_distance(a, c), 1.0);
}

TEST(Jaccard, EmptySetConventions) {
  ItemSet empty, one({1});
  EXPECT_DOUBLE_EQ(jaccard_distance(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(jaccard_distance(empty, one), 1.0);
}

TEST(Jaccard, IntersectionSizeMergeJoin) {
  ItemSet a({1, 3, 5, 7, 9}), b({2, 3, 4, 7});
  EXPECT_EQ(a.intersection_size(b), 2u);
  EXPECT_EQ(b.intersection_size(a), 2u);
}

TEST(MetricAxioms, JaccardRandomTriples) {
  Rng rng(31);
  JaccardSpace s;
  auto random_set = [&rng]() {
    std::vector<std::uint32_t> items;
    std::uint64_t n = 1 + rng.below(8);
    for (std::uint64_t i = 0; i < n; ++i) {
      items.push_back(static_cast<std::uint32_t>(rng.below(15)));
    }
    return ItemSet(std::move(items));
  };
  for (int t = 0; t < 300; ++t) {
    check_metric_axioms(s, random_set(), random_set(), random_set());
  }
}

// ----- bounded adapter -----

TEST(Bounded, MapsIntoUnitInterval) {
  BoundedSpace<EditDistanceSpace> s{EditDistanceSpace{}};
  double d = s.distance("aaaa", "bbbb");
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1.0);
  EXPECT_DOUBLE_EQ(s.distance("x", "x"), 0.0);
}

TEST(Bounded, PreservesTriangleInequality) {
  Rng rng(9);
  BoundedSpace<L2Space> s{L2Space{}};
  for (int t = 0; t < 100; ++t) {
    DenseVector x{rng.uniform(0, 100)}, y{rng.uniform(0, 100)},
        z{rng.uniform(0, 100)};
    check_metric_axioms(s, x, y, z);
  }
}

TEST(Bounded, Monotone) {
  BoundedSpace<L2Space> s{L2Space{}};
  DenseVector a{0}, b{1}, c{10};
  EXPECT_LT(s.distance(a, b), s.distance(a, c));
}

}  // namespace
}  // namespace lmk
