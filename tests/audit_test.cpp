// The invariant auditor (src/audit/): a healthy network passes every
// checker, and each checker family catches an injected protocol fault —
// mutation tests that pin both the detection and the diagnostics (the
// violation must name the offending node, the virtual time, and the
// violated invariant). Also covers the event-tie race detector.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "audit/auditor.hpp"
#include "audit/race.hpp"
#include "core/index_platform.hpp"
#include "landmark/mapper.hpp"

namespace lmk {
namespace {

using audit::AuditReport;
using audit::Violation;

/// Full stack (sim → ring → platform) with one 2-d scheme bulk-loaded
/// with seeded uniform points — the "healthy network" every mutation
/// test starts from.
struct AuditStack {
  AuditStack(std::size_t hosts, std::uint64_t seed, std::size_t objects = 240)
      : topo(hosts, 12 * kMillisecond), net(sim, topo) {
    Ring::Options ropts;
    ropts.seed = seed;
    ring = std::make_unique<Ring>(net, ropts);
    for (HostId h = 0; h < hosts; ++h) ring->create_node(h);
    ring->bootstrap();
    platform = std::make_unique<IndexPlatform>(*ring);
    scheme = platform->register_scheme("audit-fixture",
                                       uniform_boundary(2, 0.0, 1.0), false);
    Rng points(seed ^ 0x9047);
    for (std::size_t i = 0; i < objects; ++i) {
      platform->insert(scheme, i, IndexPoint{points.uniform(),
                                             points.uniform()});
    }
  }

  [[nodiscard]] audit::Auditor make_auditor(
      audit::Auditor::Options opts = {}) {
    audit::Auditor auditor(*ring, platform.get(), opts);
    auditor.install_standard_checkers();
    auditor.capture_baseline();
    return auditor;
  }

  /// First non-empty store in ring order (node index in alive_by_id).
  [[nodiscard]] std::size_t loaded_node_index() {
    auto nodes = audit::alive_by_id(*ring);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (!platform->store(*nodes[i], scheme).empty()) return i;
    }
    ADD_FAILURE() << "no node holds any entry";
    return 0;
  }

  Simulator sim;
  ConstantLatencyModel topo;
  Network net;
  std::unique_ptr<Ring> ring;
  std::unique_ptr<IndexPlatform> platform;
  std::uint32_t scheme = 0;
};

const Violation* find_violation(const AuditReport& r,
                                std::string_view invariant) {
  auto it = std::find_if(r.violations.begin(), r.violations.end(),
                         [invariant](const Violation& v) {
                           return v.invariant == invariant;
                         });
  return it == r.violations.end() ? nullptr : &*it;
}

// ----- healthy network -----

TEST(Auditor, HealthyNetworkPassesAllCheckers) {
  AuditStack s(24, 11);
  audit::Auditor auditor = s.make_auditor();
  AuditReport report = auditor.run_once();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.checks, 0u);
  EXPECT_EQ(auditor.audits_run(), 1u);
  EXPECT_TRUE(auditor.accumulated().ok());
}

TEST(Auditor, HealthyNetworkAnswersSampledQueriesExactly) {
  AuditStack s(24, 12);
  audit::Auditor auditor = s.make_auditor();
  AuditReport report = auditor.audit_queries(s.scheme, 4);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.checks, 4u);
}

TEST(Auditor, AttachedHookFiresOnCadenceAndAtQuiescence) {
  AuditStack s(16, 13, 60);
  audit::Auditor::Options opts;
  opts.cadence = 10 * kSecond;
  audit::Auditor auditor(*s.ring, s.platform.get(), opts);
  auditor.install_standard_checkers();
  auditor.capture_baseline();
  auditor.attach();
  for (SimTime t : {5 * kSecond, 15 * kSecond, 25 * kSecond}) {
    s.sim.schedule_at(t, [] {});
  }
  s.sim.run();
  // Crossings at 10s and 20s, plus the quiescence pass.
  EXPECT_EQ(s.sim.audits_fired(), 3u);
  EXPECT_EQ(auditor.audits_run(), 3u);
  EXPECT_TRUE(auditor.accumulated().ok()) << auditor.accumulated().summary();
  // An empty run() triggers no extra quiescence audit.
  s.sim.run();
  EXPECT_EQ(auditor.audits_run(), 3u);
}

// ----- mutation: ring integrity -----

TEST(AuditorMutation, CorruptedSuccessorIsDetected) {
  AuditStack s(24, 21);
  audit::Auditor auditor = s.make_auditor();
  auto nodes = audit::alive_by_id(*s.ring);
  ChordNode* victim = nodes[0];
  ChordNode* wrong = nodes[2];  // skips the true successor nodes[1]
  victim->set_successors({NodeRef{wrong, wrong->id()}});

  AuditReport report = auditor.run_once();
  ASSERT_FALSE(report.ok());
  const Violation* v = find_violation(report, "ring/successor");
  ASSERT_NE(v, nullptr) << report.summary();
  EXPECT_TRUE(v->node_known);
  EXPECT_EQ(v->node, victim->id());
  EXPECT_EQ(v->at, s.sim.now());
  // The diagnostic names both the bogus and the expected successor.
  EXPECT_NE(v->detail.find(audit::strformat(
                "%016llx", static_cast<unsigned long long>(nodes[1]->id()))),
            std::string::npos)
      << v->to_string();
  EXPECT_NE(find_violation(report, "ring/successor-list"), nullptr);
}

TEST(AuditorMutation, CorruptedPredecessorIsDetected) {
  AuditStack s(24, 22);
  audit::Auditor auditor = s.make_auditor();
  auto nodes = audit::alive_by_id(*s.ring);
  ChordNode* victim = nodes[5];
  victim->set_predecessor(nodes[3]->self_ref());  // two back: arc overlap

  AuditReport report = auditor.run_once();
  const Violation* ring_v = find_violation(report, "ring/predecessor");
  ASSERT_NE(ring_v, nullptr) << report.summary();
  EXPECT_EQ(ring_v->node, victim->id());
  const Violation* arc_v = find_violation(report, "partition/arc-overlap");
  ASSERT_NE(arc_v, nullptr) << report.summary();
  EXPECT_EQ(arc_v->node, victim->id());
}

TEST(AuditorMutation, UnrepairedCrashLeavesStaleStateDetected) {
  AuditStack s(24, 23);
  audit::Auditor auditor = s.make_auditor();
  auto nodes = audit::alive_by_id(*s.ring);
  // fail() deliberately repairs nothing: the successor's predecessor
  // ref goes stale (partition/arc: the arc has no live lower bound) and
  // the dead node's entries drop out of the multiset.
  s.ring->fail(*nodes[7]);

  AuditReport report = auditor.run_once();
  ASSERT_FALSE(report.ok());
  EXPECT_NE(find_violation(report, "partition/arc"), nullptr)
      << report.summary();
}

// ----- mutation: partition / placement -----

TEST(AuditorMutation, MisplacedEntryIsDetected) {
  AuditStack s(24, 31);
  audit::Auditor auditor = s.make_auditor();
  auto nodes = audit::alive_by_id(*s.ring);
  std::size_t from = s.loaded_node_index();
  std::size_t to = (from + nodes.size() / 2) % nodes.size();
  auto& src = s.platform->mutable_store(*nodes[from], s.scheme);
  auto& dst = s.platform->mutable_store(*nodes[to], s.scheme);
  dst.push_back(src.back());
  src.pop_back();

  AuditReport report = auditor.run_once();
  const Violation* v = find_violation(report, "partition/entry-misplaced");
  ASSERT_NE(v, nullptr) << report.summary();
  EXPECT_EQ(v->node, nodes[to]->id());
  EXPECT_EQ(v->at, s.sim.now());
  // Conservation is intact: the entry still exists exactly once.
  EXPECT_EQ(find_violation(report, "conservation/lost"), nullptr);
  EXPECT_EQ(find_violation(report, "conservation/duplicated"), nullptr);
}

TEST(AuditorMutation, CorruptedPlacementKeyIsDetected) {
  AuditStack s(24, 32);
  audit::Auditor auditor = s.make_auditor();
  auto nodes = audit::alive_by_id(*s.ring);
  ChordNode* holder = nodes[s.loaded_node_index()];
  auto& corrupted = s.platform->mutable_store(*holder, s.scheme);
  corrupted.set_key(0, corrupted.key(0) + 1);

  AuditReport report = auditor.run_once();
  const Violation* v = find_violation(report, "partition/entry-key");
  ASSERT_NE(v, nullptr) << report.summary();
  EXPECT_EQ(v->node, holder->id());
}

// ----- mutation: conservation -----

TEST(AuditorMutation, DroppedEntryIsReportedAsLost) {
  AuditStack s(24, 41);
  audit::Auditor auditor = s.make_auditor();
  auto nodes = audit::alive_by_id(*s.ring);
  ChordNode* holder = nodes[s.loaded_node_index()];
  auto& store = s.platform->mutable_store(*holder, s.scheme);
  std::uint64_t dropped = store.front().object;
  store.erase_at(0);

  AuditReport report = auditor.run_once();
  const Violation* v = find_violation(report, "conservation/lost");
  ASSERT_NE(v, nullptr) << report.summary();
  EXPECT_NE(v->detail.find(std::to_string(dropped)), std::string::npos)
      << v->to_string();
}

TEST(AuditorMutation, DuplicatedEntryIsReported) {
  AuditStack s(24, 42);
  audit::Auditor auditor = s.make_auditor();
  auto nodes = audit::alive_by_id(*s.ring);
  ChordNode* holder = nodes[s.loaded_node_index()];
  auto& store = s.platform->mutable_store(*holder, s.scheme);
  store.push_back(store.front());  // same owner: placement stays legal

  AuditReport report = auditor.run_once();
  const Violation* v = find_violation(report, "conservation/duplicated");
  ASSERT_NE(v, nullptr) << report.summary();
  EXPECT_EQ(find_violation(report, "partition/entry-misplaced"), nullptr);
}

// ----- mutation: query completeness -----

TEST(AuditorMutation, HoardedEntriesMakeSampledQueriesIncomplete) {
  AuditStack s(24, 51);
  audit::Auditor auditor = s.make_auditor();
  auto nodes = audit::alive_by_id(*s.ring);
  // Move every other node's entries onto one hoarder, behind the
  // router's back: the oracle still sees them, routed subqueries ask
  // the true owners and come back empty.
  ChordNode* hoarder = nodes[0];
  auto& hoard = s.platform->mutable_store(*hoarder, s.scheme);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    auto& store = s.platform->mutable_store(*nodes[i], s.scheme);
    hoard.append(store);
    store.clear();
  }

  AuditReport report = auditor.audit_queries(s.scheme, 6);
  const Violation* v = find_violation(report, "query/missing-result");
  ASSERT_NE(v, nullptr) << report.summary();
  EXPECT_NE(v->detail.find("object"), std::string::npos);
  // Stamped with the virtual time the failing sample completed at.
  EXPECT_GT(v->at, 0);
  EXPECT_LE(v->at, s.sim.now());
}

// ----- fail-fast & reporting -----

TEST(Auditor, FailFastAbortsOnViolation) {
  AuditStack s(16, 61);
  audit::Auditor::Options opts;
  opts.fail_fast = true;
  audit::Auditor auditor(*s.ring, s.platform.get(), opts);
  auditor.install_standard_checkers();
  auditor.capture_baseline();
  auto nodes = audit::alive_by_id(*s.ring);
  nodes[0]->set_successors({NodeRef{nodes[2], nodes[2]->id()}});
  EXPECT_DEATH(auditor.run_once(), "ring/successor");
}

TEST(Auditor, ViolationToStringNamesInvariantNodeAndTime) {
  Violation v{"ring/successor", 0xabcdULL, true, 42 * kSecond, "detail text"};
  std::string text = v.to_string();
  EXPECT_NE(text.find("[ring/successor]"), std::string::npos);
  EXPECT_NE(text.find("000000000000abcd"), std::string::npos);
  EXPECT_NE(text.find("t=42000000"), std::string::npos);
  EXPECT_NE(text.find("detail text"), std::string::npos);
}

// ----- event-tie race detector -----

TEST(RaceDetector, FlagsOrderDependentTiedEvents) {
  auto scenario = [](TieBreak mode, TieStats* stats) {
    Simulator sim;
    sim.set_tie_break(mode);
    std::uint64_t value = 1;
    // Same instant, same actor, non-commutative effects: a model race.
    sim.schedule_at(10, [&value] { value = value * 3; }, 7);
    sim.schedule_at(10, [&value] { value = value + 5; }, 7);
    sim.run();
    if (stats != nullptr) *stats = sim.tie_stats();
    return std::vector<audit::NodeDigest>{{7, value}};
  };
  audit::RaceReport report = audit::detect_event_tie_races(scenario);
  EXPECT_TRUE(report.diverged);
  ASSERT_EQ(report.divergent_nodes.size(), 1u);
  EXPECT_EQ(report.divergent_nodes[0], 7u);
  EXPECT_EQ(report.ties.groups, 1u);
  EXPECT_EQ(report.ties.events, 2u);
  EXPECT_NE(report.to_string().find("0000000000000007"), std::string::npos);
}

TEST(RaceDetector, CommutativeTiedEventsDoNotDiverge) {
  auto scenario = [](TieBreak mode, TieStats* stats) {
    Simulator sim;
    sim.set_tie_break(mode);
    std::uint64_t value = 0;
    sim.schedule_at(10, [&value] { value += 1; }, 7);
    sim.schedule_at(10, [&value] { value += 2; }, 7);
    // Ties on different actors (or untagged events) are not a group.
    sim.schedule_at(10, [] {}, 8);
    sim.schedule_at(10, [] {});
    sim.run();
    if (stats != nullptr) *stats = sim.tie_stats();
    return std::vector<audit::NodeDigest>{{7, value}};
  };
  audit::RaceReport report = audit::detect_event_tie_races(scenario);
  EXPECT_FALSE(report.diverged) << report.to_string();
  EXPECT_TRUE(report.divergent_nodes.empty());
  EXPECT_EQ(report.ties.groups, 1u);
  EXPECT_EQ(report.ties.events, 2u);
}

TEST(RaceDetector, MissingNodeCountsAsDivergence) {
  auto scenario = [](TieBreak mode, TieStats*) {
    std::vector<audit::NodeDigest> digests{{1, 100}, {2, 200}};
    if (mode == TieBreak::kReversed) digests.pop_back();
    return digests;
  };
  audit::RaceReport report = audit::detect_event_tie_races(scenario);
  EXPECT_TRUE(report.diverged);
  ASSERT_EQ(report.divergent_nodes.size(), 1u);
  EXPECT_EQ(report.divergent_nodes[0], 2u);
}

TEST(RaceDetector, WholeNetworkQueryScenarioIsTieOrderIndependent) {
  auto scenario = [](TieBreak mode, TieStats* stats) {
    AuditStack s(16, 71, 120);
    s.sim.set_tie_break(mode);
    auto nodes = audit::alive_by_id(*s.ring);
    for (std::size_t q = 0; q < 4; ++q) {
      IndexPoint center{0.2 + 0.15 * static_cast<double>(q), 0.5};
      s.platform->range_query(*nodes[q], s.scheme, center, 0.1,
                              ReplyMode::kAllMatches,
                              [](const IndexPlatform::QueryOutcome&) {});
    }
    s.sim.run();
    if (stats != nullptr) *stats = s.sim.tie_stats();
    return audit::network_digests(*s.ring, s.platform.get());
  };
  audit::RaceReport report = audit::detect_event_tie_races(scenario);
  EXPECT_FALSE(report.diverged) << report.to_string();
}

}  // namespace
}  // namespace lmk
