// Platform-level semantics: dynamic updates (insert/remove), scheme
// lifecycle (clear, boundary update), reply batching, ranking behaviour
// and memoization, and the message byte model under batching.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>

#include "core/index_platform.hpp"

namespace lmk {
namespace {

struct Stack {
  Stack(std::size_t hosts, std::uint64_t seed)
      : topo(hosts, 12 * kMillisecond), net(sim, topo) {
    Ring::Options ropts;
    ropts.seed = seed;
    ring = std::make_unique<Ring>(net, ropts);
    for (HostId h = 0; h < hosts; ++h) ring->create_node(h);
    ring->bootstrap();
    platform = std::make_unique<IndexPlatform>(*ring);
  }

  std::optional<IndexPlatform::QueryOutcome> query_all(std::uint32_t scheme,
                                                       Region region) {
    std::optional<IndexPlatform::QueryOutcome> outcome;
    platform->region_query(*ring->alive_nodes()[0], scheme, region,
                           IndexPoint(region.dims(), 0.5),
                           ReplyMode::kAllMatches,
                           [&](const auto& o) { outcome = o; });
    sim.run();
    return outcome;
  }

  Simulator sim;
  ConstantLatencyModel topo;
  Network net;
  std::unique_ptr<Ring> ring;
  std::unique_ptr<IndexPlatform> platform;
};

TEST(PlatformUpdates, RemoveDeletesExactlyOneEntry) {
  Stack s(16, 1);
  auto scheme = s.platform->register_scheme("rm", uniform_boundary(2, 0, 1),
                                            false);
  s.platform->insert(scheme, 1, IndexPoint{0.3, 0.3});
  s.platform->insert(scheme, 2, IndexPoint{0.3, 0.3});
  s.platform->insert(scheme, 3, IndexPoint{0.8, 0.8});
  EXPECT_EQ(s.platform->scheme_entries(scheme), 3u);
  EXPECT_TRUE(s.platform->remove(scheme, 2, IndexPoint{0.3, 0.3}));
  EXPECT_EQ(s.platform->scheme_entries(scheme), 2u);
  // Removing again (or with a wrong point) fails without side effects.
  EXPECT_FALSE(s.platform->remove(scheme, 2, IndexPoint{0.3, 0.3}));
  EXPECT_FALSE(s.platform->remove(scheme, 1, IndexPoint{0.9, 0.9}));
  EXPECT_EQ(s.platform->scheme_entries(scheme), 2u);
  // The removed object no longer appears in query results.
  auto outcome = s.query_all(scheme, Region{{Interval{0, 1}, Interval{0, 1}}});
  ASSERT_TRUE(outcome.has_value());
  std::set<std::uint64_t> got(outcome->results.begin(),
                              outcome->results.end());
  EXPECT_EQ(got, (std::set<std::uint64_t>{1, 3}));
}

TEST(PlatformUpdates, RemoveViaNetworkRoutesToOwner) {
  Stack s(32, 2);
  auto scheme = s.platform->register_scheme("rm-net",
                                            uniform_boundary(1, 0, 1), false);
  Rng rng(3);
  std::vector<IndexPoint> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back(IndexPoint{rng.uniform()});
    s.platform->insert(scheme, static_cast<std::uint64_t>(i), pts.back());
  }
  int removed_count = 0;
  auto nodes = s.ring->alive_nodes();
  for (int i = 0; i < 40; i += 2) {
    s.platform->remove_via_network(
        *nodes[rng.below(nodes.size())], scheme,
        static_cast<std::uint64_t>(i), pts[static_cast<std::size_t>(i)],
        [&](bool removed, int hops) {
          EXPECT_TRUE(removed);
          EXPECT_GE(hops, 0);
          ++removed_count;
        });
  }
  s.sim.run();
  EXPECT_EQ(removed_count, 20);
  EXPECT_EQ(s.platform->scheme_entries(scheme), 20u);
  s.platform->check_placement_invariant();
}

TEST(PlatformUpdates, InterleavedInsertRemoveQueryStaysExact) {
  Stack s(16, 4);
  auto scheme = s.platform->register_scheme("mix", uniform_boundary(2, 0, 1),
                                            false);
  Rng rng(5);
  std::vector<IndexPoint> pts;
  std::set<std::uint64_t> live;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 50; ++i) {
      auto id = static_cast<std::uint64_t>(pts.size());
      pts.push_back(IndexPoint{rng.uniform(), rng.uniform()});
      s.platform->insert(scheme, id, pts.back());
      live.insert(id);
    }
    // Remove a third of the live set.
    std::vector<std::uint64_t> victims(live.begin(), live.end());
    for (std::size_t i = 0; i < victims.size(); i += 3) {
      ASSERT_TRUE(s.platform->remove(
          scheme, victims[i], pts[static_cast<std::size_t>(victims[i])]));
      live.erase(victims[i]);
    }
    auto outcome =
        s.query_all(scheme, Region{{Interval{0, 1}, Interval{0, 1}}});
    ASSERT_TRUE(outcome.has_value());
    std::set<std::uint64_t> got(outcome->results.begin(),
                                outcome->results.end());
    EXPECT_EQ(got, live) << "round " << round;
  }
}

TEST(PlatformScheme, ClearSchemeLeavesOthersIntact) {
  Stack s(8, 6);
  auto a = s.platform->register_scheme("a", uniform_boundary(1, 0, 1), false);
  auto b = s.platform->register_scheme("b", uniform_boundary(1, 0, 1), true);
  for (int i = 0; i < 30; ++i) {
    s.platform->insert(a, static_cast<std::uint64_t>(i),
                       IndexPoint{0.1 + i * 0.01});
    s.platform->insert(b, static_cast<std::uint64_t>(i),
                       IndexPoint{0.1 + i * 0.01});
  }
  s.platform->clear_scheme(a);
  EXPECT_EQ(s.platform->scheme_entries(a), 0u);
  EXPECT_EQ(s.platform->scheme_entries(b), 30u);
  EXPECT_EQ(s.platform->total_entries(), 30u);
}

TEST(PlatformScheme, BoundaryUpdateRequiresEmptyStoreAndSameDims) {
  Stack s(8, 7);
  auto scheme = s.platform->register_scheme("bnd", uniform_boundary(2, 0, 1),
                                            false);
  s.platform->update_scheme_boundary(scheme, uniform_boundary(2, 0, 5));
  EXPECT_DOUBLE_EQ(s.platform->scheme(scheme).boundary[0].hi, 5.0);
  // Entries hashed under the new boundary; queries work.
  s.platform->insert(scheme, 1, IndexPoint{4.0, 4.0});
  auto outcome = s.query_all(scheme, Region{{Interval{3, 5}, Interval{3, 5}}});
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->results.size(), 1u);
  EXPECT_DEATH(
      s.platform->update_scheme_boundary(scheme, uniform_boundary(2, 0, 9)),
      "scheme_entries");
}

TEST(PlatformReplies, OneResultMessagePerNodePerStep) {
  // Constant latency means every subquery bound for a node arrives in
  // lockstep waves; each wave produces exactly one reply per node.
  Stack s(4, 8);
  auto scheme = s.platform->register_scheme("batch",
                                            uniform_boundary(2, 0, 1), false);
  Rng rng(9);
  for (int i = 0; i < 400; ++i) {
    s.platform->insert(scheme, static_cast<std::uint64_t>(i),
                       IndexPoint{rng.uniform(), rng.uniform()});
  }
  auto outcome = s.query_all(scheme, Region{{Interval{0, 1}, Interval{0, 1}}});
  ASSERT_TRUE(outcome.has_value());
  // Many subqueries were solved, but replies are batched per node/step:
  // far fewer result messages than local solves.
  EXPECT_GT(outcome->subqueries, outcome->result_messages * 2);
  EXPECT_GE(outcome->result_messages,
            static_cast<std::uint64_t>(outcome->index_nodes));
  // Byte model: every result message is 20 + 6*entries; entries total
  // equals the distinct results (whole-space query, kAllMatches).
  EXPECT_EQ(outcome->result_bytes,
            outcome->result_messages * 20 + 6 * outcome->results.size());
}

TEST(PlatformReplies, QueryMessageBytesDecomposePerBatchModel) {
  Stack s(32, 10);
  auto scheme = s.platform->register_scheme("bytes",
                                            uniform_boundary(3, 0, 1), false);
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    s.platform->insert(
        scheme, static_cast<std::uint64_t>(i),
        IndexPoint{rng.uniform(), rng.uniform(), rng.uniform()});
  }
  auto outcome = s.query_all(
      scheme,
      Region{{Interval{0.1, 0.8}, Interval{0.2, 0.9}, Interval{0.0, 0.7}}});
  ASSERT_TRUE(outcome.has_value());
  // Each message: 24 + n * (2*2*3 + 8 + 1) = 24 + 21n bytes.
  ASSERT_GT(outcome->query_messages, 0u);
  std::uint64_t payload =
      outcome->query_bytes - outcome->query_messages * 24;
  EXPECT_EQ(payload % 21, 0u);
  EXPECT_GE(payload / 21, outcome->query_messages);
}

TEST(PlatformRanking, RankFunctionMemoizedPerQuery) {
  // The platform may evaluate the ranking functional many times per
  // candidate (comparison sorts); the typed facade memoizes per query.
  // Here we verify the platform honours whatever functional it is given
  // and that per-node top-k selects by it.
  Stack s(1, 12);
  IndexPlatform::Options popts;
  popts.top_k = 2;
  auto platform = std::make_unique<IndexPlatform>(*s.ring, popts);
  auto scheme =
      platform->register_scheme("rank", uniform_boundary(1, 0, 1), false);
  platform->insert(scheme, 0, IndexPoint{0.30});
  platform->insert(scheme, 1, IndexPoint{0.31});
  platform->insert(scheme, 2, IndexPoint{0.32});
  platform->insert(scheme, 3, IndexPoint{0.33});
  // Inverted ranking: object id 3 is "nearest".
  auto rank = [](std::uint64_t id) { return 10.0 - static_cast<double>(id); };
  std::optional<IndexPlatform::QueryOutcome> outcome;
  platform->range_query(*s.ring->alive_nodes()[0], scheme, IndexPoint{0.315},
                        0.05, ReplyMode::kTopK,
                        [&](const auto& o) { outcome = o; }, rank);
  s.sim.run();
  ASSERT_TRUE(outcome.has_value());
  std::set<std::uint64_t> got(outcome->results.begin(),
                              outcome->results.end());
  EXPECT_TRUE(got.count(3) == 1);
  EXPECT_TRUE(got.count(0) == 0);
}

TEST(PlatformTraffic, CountersSeparateQueryAndResultAndMaintenance) {
  Stack s(16, 13);
  auto scheme = s.platform->register_scheme("traffic",
                                            uniform_boundary(1, 0, 1), false);
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    s.platform->insert(scheme, static_cast<std::uint64_t>(i),
                       IndexPoint{rng.uniform()});
  }
  auto q0 = s.platform->query_traffic().bytes;
  auto r0 = s.platform->result_traffic().bytes;
  auto m0 = s.ring->maintenance_traffic().bytes;
  auto outcome = s.query_all(scheme, Region{{Interval{0.2, 0.7}}});
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(s.platform->query_traffic().bytes - q0, outcome->query_bytes);
  EXPECT_EQ(s.platform->result_traffic().bytes - r0, outcome->result_bytes);
  EXPECT_EQ(s.ring->maintenance_traffic().bytes, m0);  // no lookups used
  // Network total covers everything.
  EXPECT_GE(s.net.total_traffic().bytes,
            outcome->query_bytes + outcome->result_bytes);
}

TEST(PlatformQueries, ActiveQueriesDrainToZero) {
  Stack s(16, 15);
  auto scheme = s.platform->register_scheme("drain",
                                            uniform_boundary(2, 0, 1), false);
  Rng rng(16);
  for (int i = 0; i < 200; ++i) {
    s.platform->insert(scheme, static_cast<std::uint64_t>(i),
                       IndexPoint{rng.uniform(), rng.uniform()});
  }
  int completed = 0;
  auto nodes = s.ring->alive_nodes();
  for (int i = 0; i < 10; ++i) {
    s.platform->region_query(
        *nodes[rng.below(nodes.size())], scheme,
        Region{{Interval{0.1, 0.9}, Interval{0.1, 0.9}}}, IndexPoint{0.5, 0.5},
        ReplyMode::kTopK, [&](const auto&) { ++completed; });
  }
  EXPECT_EQ(s.platform->active_queries(), 10u);
  s.sim.run();
  EXPECT_EQ(completed, 10);
  EXPECT_EQ(s.platform->active_queries(), 0u);
}

TEST(PlatformLoad, MedianKeyHandlesRingWrap) {
  // A node whose ownership range wraps the zero point must still split
  // its entries correctly in ring order.
  Stack s(2, 17);
  auto scheme = s.platform->register_scheme("wrap",
                                            uniform_boundary(1, 0, 1), false);
  Rng rng(18);
  for (int i = 0; i < 300; ++i) {
    s.platform->insert(scheme, static_cast<std::uint64_t>(i),
                       IndexPoint{rng.uniform()});
  }
  for (ChordNode* n : s.ring->alive_nodes()) {
    std::size_t load = s.platform->entries_on(*n);
    if (load < 10) continue;
    Id split = s.platform->median_key(*n);
    ASSERT_TRUE(in_open(split, n->predecessor().id, n->id()));
    std::size_t below = 0;
    for (EntryView e : s.platform->store(*n, scheme)) {
      if (in_open_closed(e.key, n->predecessor().id, split)) ++below;
    }
    EXPECT_NEAR(static_cast<double>(below), static_cast<double>(load) / 2,
                static_cast<double>(load) * 0.1 + 1);
  }
}

}  // namespace
}  // namespace lmk
