// The parallel sweep engine (src/eval/sweep.hpp) and the experiment
// isolation contract it relies on: concurrent or interleaved
// SimilarityExperiment instances over shared immutable inputs must
// produce stats identical to isolated serial runs.
#include "eval/sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "eval/experiment.hpp"
#include "landmark/selection.hpp"
#include "workload/synthetic.hpp"

namespace lmk {
namespace {

/// Restores the default thread configuration when a test exits.
struct ThreadGuard {
  ~ThreadGuard() { set_threads(0); }
};

TEST(SweepDriver, OutputsInDeclarationOrderAtAnyThreadCount) {
  ThreadGuard guard;
  auto run_at = [&](std::size_t threads) {
    set_threads(threads);
    SweepDriver driver;
    for (int c = 0; c < 12; ++c) {
      driver.add_cell([c]() {
        CellOutput out;
        out.lines.push_back("line-" + std::to_string(c));
        out.rows.push_back({"cell", std::to_string(c * c)});
        return out;
      });
    }
    return driver.run();
  };
  auto t1 = run_at(1);
  auto t8 = run_at(8);
  ASSERT_EQ(t1.size(), 12u);
  ASSERT_EQ(t8.size(), 12u);
  for (int c = 0; c < 12; ++c) {
    EXPECT_EQ(t1[c].lines,
              (std::vector<std::string>{"line-" + std::to_string(c)}));
    EXPECT_EQ(t1[c].rows, t8[c].rows);
    EXPECT_EQ(t1[c].lines, t8[c].lines);
  }
}

TEST(SweepDriver, ResidentCapBoundsConcurrentCells) {
  ThreadGuard guard;
  set_threads(8);
  SweepDriver::Options opts;
  opts.max_resident = 2;
  SweepDriver driver(opts);
  std::atomic<std::size_t> active{0};
  std::atomic<std::size_t> peak{0};
  for (int c = 0; c < 10; ++c) {
    driver.add_cell([&]() {
      std::size_t now = active.fetch_add(1) + 1;
      std::size_t seen = peak.load();
      while (now > seen && !peak.compare_exchange_weak(seen, now)) {
      }
      std::atomic<int> spin{0};
      while (spin.fetch_add(1, std::memory_order_relaxed) < 2000) {
      }
      active.fetch_sub(1);
      return CellOutput{};
    });
  }
  EXPECT_EQ(driver.resident_cap(), 2u);
  auto outs = driver.run();
  EXPECT_EQ(outs.size(), 10u);
  EXPECT_LE(peak.load(), 2u);
  EXPECT_LE(driver.peak_resident(), 2u);
}

TEST(SweepDriver, ResidentCapFromEnvironment) {
  ThreadGuard guard;
  set_threads(8);
  ::setenv("LMK_SWEEP_RESIDENT", "3", 1);
  SweepDriver driver;
  EXPECT_EQ(driver.resident_cap(), 3u);
  ::unsetenv("LMK_SWEEP_RESIDENT");
  EXPECT_EQ(driver.resident_cap(), 8u);  // falls back to the pool width
  SweepDriver::Options opts;
  opts.max_resident = 5;
  ::setenv("LMK_SWEEP_RESIDENT", "3", 1);
  SweepDriver explicit_cap(opts);
  EXPECT_EQ(explicit_cap.resident_cap(), 5u);  // options beat the env var
  ::unsetenv("LMK_SWEEP_RESIDENT");
}

// ---------------------------------------------------------------------
// Experiment isolation: shared immutable inputs, private mutable state.
// ---------------------------------------------------------------------

struct SmallWorkload {
  SyntheticConfig cfg;
  SyntheticDataset data;
  std::vector<DenseVector> query_points;
  double max_dist;
  L2Space space;

  SmallWorkload() {
    cfg.objects = 700;
    cfg.dims = 8;
    cfg.clusters = 3;
    cfg.deviation = 6;
    Rng rng(60);
    data = generate_clustered(cfg, rng);
    query_points = generate_queries(cfg, data, 8, rng);
    max_dist = max_theoretical_distance(cfg);
  }

  [[nodiscard]] LandmarkMapper<L2Space> mapper(std::uint64_t seed) const {
    Rng lm_rng(seed);
    auto landmarks = greedy_selection(
        space, std::span<const DenseVector>(data.points), 4, lm_rng);
    return LandmarkMapper<L2Space>(space, landmarks,
                                   uniform_boundary(4, 0, max_dist));
  }
};

using ExpHandle = std::unique_ptr<SimilarityExperiment<L2Space>>;

ExpHandle make_experiment(const SmallWorkload& w, std::uint64_t mapper_seed,
                          const std::string& name) {
  ExperimentConfig ecfg;
  ecfg.nodes = 16;
  ecfg.seed = 61;
  auto exp = std::make_unique<SimilarityExperiment<L2Space>>(
      ecfg, w.space, w.data.points, w.mapper(mapper_seed), name);
  exp->set_queries(w.query_points);
  return exp;
}

std::vector<std::vector<std::string>> batch_rows(
    SimilarityExperiment<L2Space>& exp, const SmallWorkload& w) {
  std::vector<std::vector<std::string>> rows;
  for (double f : {0.02, 0.05, 0.10}) {
    rows.push_back(exp.run_batch(f * w.max_dist).row("b"));
  }
  return rows;
}

TEST(ExperimentReentrancy, InterleavedBatchesMatchIsolatedRuns) {
  ThreadGuard guard;
  set_threads(1);
  SmallWorkload w;

  // Isolated: each experiment runs its whole batch sequence alone.
  auto iso_a = make_experiment(w, 62, "A");
  auto iso_b = make_experiment(w, 63, "B");
  auto rows_a = batch_rows(*iso_a, w);
  auto rows_b = batch_rows(*iso_b, w);

  // Interleaved: the same two experiment configs alternate run_batch
  // calls. No shared mutable state means the per-batch stats must be
  // identical to the isolated sequences.
  auto int_a = make_experiment(w, 62, "A");
  auto int_b = make_experiment(w, 63, "B");
  std::vector<std::vector<std::string>> got_a, got_b;
  for (double f : {0.02, 0.05, 0.10}) {
    got_a.push_back(int_a->run_batch(f * w.max_dist).row("b"));
    got_b.push_back(int_b->run_batch(f * w.max_dist).row("b"));
  }
  EXPECT_EQ(got_a, rows_a);
  EXPECT_EQ(got_b, rows_b);
}

TEST(ExperimentSharing, SharedHandlesMatchOwnedCopies) {
  ThreadGuard guard;
  set_threads(1);
  SmallWorkload w;

  ExperimentConfig ecfg;
  ecfg.nodes = 16;
  ecfg.seed = 61;

  // Owned path: by-value dataset/queries, lazy truth.
  SimilarityExperiment<L2Space> owned(ecfg, w.space, w.data.points,
                                      w.mapper(64), "owned");
  auto truth = SimilarityExperiment<L2Space>::compute_truth(
      w.space, w.data.points, w.query_points, 10);
  owned.set_queries(w.query_points, truth);

  // Shared path: one handle per input, shared topology, identical cfg.
  auto dataset =
      std::make_shared<const std::vector<DenseVector>>(w.data.points);
  auto queries =
      std::make_shared<const std::vector<DenseVector>>(w.query_points);
  auto truth_handle = std::make_shared<
      const std::vector<std::vector<std::uint64_t>>>(truth);
  auto topology = SimilarityExperiment<L2Space>::make_topology(ecfg);
  SimilarityExperiment<L2Space> shared_a(ecfg, w.space, dataset,
                                         w.mapper(64), "shared-a", topology);
  SimilarityExperiment<L2Space> shared_b(ecfg, w.space, dataset,
                                         w.mapper(64), "shared-b", topology);
  shared_a.set_queries(queries, truth_handle);
  shared_b.set_queries(queries, truth_handle);

  for (double f : {0.02, 0.05}) {
    auto want = owned.run_batch(f * w.max_dist).row("r");
    EXPECT_EQ(shared_a.run_batch(f * w.max_dist).row("r"), want);
    EXPECT_EQ(shared_b.run_batch(f * w.max_dist).row("r"), want);
  }
}

TEST(ExperimentSharing, MismatchedTopologyHandleIsRebuiltSilently) {
  ThreadGuard guard;
  set_threads(1);
  SmallWorkload w;

  ExperimentConfig ecfg;
  ecfg.nodes = 16;
  ecfg.seed = 61;
  // A topology built for a DIFFERENT config: the experiment must ignore
  // it (options mismatch) and build its own, producing the same results
  // as no handle at all.
  ExperimentConfig other = ecfg;
  other.seed = 999;
  auto wrong_topology = SimilarityExperiment<L2Space>::make_topology(other);

  SimilarityExperiment<L2Space> plain(ecfg, w.space, w.data.points,
                                      w.mapper(65), "plain");
  auto dataset =
      std::make_shared<const std::vector<DenseVector>>(w.data.points);
  SimilarityExperiment<L2Space> with_wrong(
      ecfg, w.space, dataset, w.mapper(65), "wrong-topo", wrong_topology);
  plain.set_queries(w.query_points);
  with_wrong.set_queries(
      std::make_shared<const std::vector<DenseVector>>(w.query_points));
  auto want = plain.run_batch(0.05 * w.max_dist).row("r");
  EXPECT_EQ(with_wrong.run_batch(0.05 * w.max_dist).row("r"), want);
}

TEST(SweepDriver, ConcurrentExperimentCellsMatchSerialCells) {
  ThreadGuard guard;
  SmallWorkload w;
  auto dataset =
      std::make_shared<const std::vector<DenseVector>>(w.data.points);
  auto queries =
      std::make_shared<const std::vector<DenseVector>>(w.query_points);
  auto truth = std::make_shared<
      const std::vector<std::vector<std::uint64_t>>>(
      SimilarityExperiment<L2Space>::compute_truth(
          w.space, w.data.points, w.query_points, 10));

  auto run_at = [&](std::size_t threads) {
    set_threads(threads);
    ExperimentConfig ecfg;
    ecfg.nodes = 16;
    ecfg.seed = 61;
    auto topology = SimilarityExperiment<L2Space>::make_topology(ecfg);
    SweepDriver driver;
    for (std::uint64_t seed : {70ull, 71ull, 72ull, 73ull}) {
      driver.add_cell([&, seed]() {
        SimilarityExperiment<L2Space> exp(ecfg, w.space, dataset,
                                          w.mapper(seed),
                                          "cell-" + std::to_string(seed),
                                          topology);
        exp.set_queries(queries, truth);
        CellOutput out;
        out.rows.push_back(exp.run_batch(0.05 * w.max_dist).row("r"));
        return out;
      });
    }
    return driver.run();
  };
  auto serial = run_at(1);
  auto parallel = run_at(8);
  ASSERT_EQ(serial.size(), 4u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].rows, parallel[i].rows) << "cell " << i;
  }
}

}  // namespace
}  // namespace lmk
