// Tests for the Chord substrate: node state, oracle construction,
// protocol lookups, join + stabilization convergence, PNS, and dynamic
// membership repair.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "chord/ring.hpp"

namespace lmk {
namespace {

struct TestOverlay {
  explicit TestOverlay(std::size_t hosts, bool pns = false,
                       std::uint64_t seed = 1)
      : topo(hosts, 10 * kMillisecond), net(sim, topo) {
    Ring::Options opts;
    opts.pns = pns;
    opts.seed = seed;
    ring = std::make_unique<Ring>(net, opts);
  }

  Simulator sim;
  ConstantLatencyModel topo;
  Network net;
  std::unique_ptr<Ring> ring;
};

TEST(ChordNode, OwnsUsesPredecessorInterval) {
  ChordNode a(0, 100), b(1, 200);
  b.set_predecessor(NodeRef{&a, 100});
  EXPECT_TRUE(b.owns(150));
  EXPECT_TRUE(b.owns(200));
  EXPECT_FALSE(b.owns(100));
  EXPECT_FALSE(b.owns(250));
}

TEST(ChordNode, SuccessorSkipsStaleRefs) {
  ChordNode a(0, 100), b(1, 200), c(2, 300);
  a.set_successors({NodeRef{&b, 200}, NodeRef{&c, 300}});
  EXPECT_EQ(a.successor().node, &b);
  b.kill();
  EXPECT_EQ(a.successor().node, &c);
  c.kill();
  EXPECT_EQ(a.successor().node, &a);  // self when all stale
}

TEST(ChordNode, StaleRefAfterRejoinWithNewId) {
  ChordNode a(0, 100), b(1, 200);
  NodeRef ref{&b, 200};
  EXPECT_TRUE(ref.valid());
  b.kill();
  EXPECT_FALSE(ref.valid());
  b.revive(555);
  EXPECT_FALSE(ref.valid());  // id changed: still stale
  EXPECT_TRUE(NodeRef(&b, 555).valid());
  (void)a;
}

TEST(ChordNode, NextHopPicksClosestPreceding) {
  ChordNode me(0, 0);
  ChordNode f1(1, 100), f2(2, 200), f3(3, 400);
  me.set_finger(0, NodeRef{&f1, 100});
  me.set_finger(1, NodeRef{&f2, 200});
  me.set_finger(2, NodeRef{&f3, 400});
  EXPECT_EQ(me.next_hop(300).node, &f2);
  EXPECT_EQ(me.next_hop(500).node, &f3);
  EXPECT_EQ(me.next_hop(150).node, &f1);
  // Nothing precedes key 50: me believes it is the predecessor.
  EXPECT_EQ(me.next_hop(50).node, &me);
  // Exact key: the owner is NOT a valid "preceding" entry.
  EXPECT_EQ(me.next_hop(200).node, &f1);
}

TEST(ChordNode, NextHopIgnoresStaleEntries) {
  ChordNode me(0, 0);
  ChordNode f1(1, 100), f2(2, 200);
  me.set_finger(0, NodeRef{&f1, 100});
  me.set_finger(1, NodeRef{&f2, 200});
  f2.kill();
  EXPECT_EQ(me.next_hop(300).node, &f1);
}

TEST(Ring, BootstrapBuildsCorrectNeighbors) {
  TestOverlay o(32);
  for (HostId h = 0; h < 32; ++h) o.ring->create_node(h);
  o.ring->bootstrap();
  auto nodes = o.ring->alive_nodes();
  std::sort(nodes.begin(), nodes.end(),
            [](auto* a, auto* b) { return a->id() < b->id(); });
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ChordNode* n = nodes[i];
    ChordNode* succ = nodes[(i + 1) % nodes.size()];
    ChordNode* pred = nodes[(i + nodes.size() - 1) % nodes.size()];
    EXPECT_EQ(n->successor().node, succ);
    EXPECT_EQ(n->predecessor().node, pred);
  }
}

TEST(Ring, SuccessorListHasDepth) {
  TestOverlay o(40);
  for (HostId h = 0; h < 40; ++h) o.ring->create_node(h);
  o.ring->bootstrap();
  for (ChordNode* n : o.ring->alive_nodes()) {
    EXPECT_EQ(n->successor_list().size(), ChordNode::kSuccessors);
  }
}

TEST(Ring, OracleSuccessorWrapsAround) {
  TestOverlay o(8);
  for (HostId h = 0; h < 8; ++h) o.ring->create_node(h);
  auto nodes = o.ring->alive_nodes();
  Id max_id = 0;
  ChordNode* first = nodes[0];
  for (ChordNode* n : nodes) {
    max_id = std::max(max_id, n->id());
    if (n->id() < first->id()) first = n;
  }
  EXPECT_EQ(o.ring->oracle_successor(max_id + 1), first);
}

TEST(Ring, OraclePredecessorOfExactId) {
  TestOverlay o(8);
  for (HostId h = 0; h < 8; ++h) o.ring->create_node(h);
  auto nodes = o.ring->alive_nodes();
  std::sort(nodes.begin(), nodes.end(),
            [](auto* a, auto* b) { return a->id() < b->id(); });
  EXPECT_EQ(o.ring->oracle_predecessor(nodes[3]->id()), nodes[2]);
  EXPECT_EQ(o.ring->oracle_predecessor(nodes[3]->id() + 1), nodes[3]);
}

TEST(Ring, FingersPointToIntervalSuccessors) {
  TestOverlay o(64, /*pns=*/false);
  for (HostId h = 0; h < 64; ++h) o.ring->create_node(h);
  o.ring->bootstrap();
  for (ChordNode* n : o.ring->alive_nodes()) {
    for (int i = 0; i < kIdBits; ++i) {
      NodeRef f = n->finger_table()[static_cast<std::size_t>(i)];
      ASSERT_TRUE(f.valid());
      EXPECT_EQ(f.node, o.ring->oracle_successor(n->finger_start(i)));
    }
  }
}

TEST(Ring, ProtocolLookupFindsOwner) {
  TestOverlay o(64);
  Rng rng(2);
  for (HostId h = 0; h < 64; ++h) o.ring->create_node(h);
  o.ring->bootstrap();
  auto nodes = o.ring->alive_nodes();
  for (int t = 0; t < 50; ++t) {
    Id key = rng.next();
    ChordNode* expected = o.ring->oracle_successor(key);
    ChordNode* from = nodes[rng.below(nodes.size())];
    NodeRef got;
    int hops = -1;
    o.ring->find_successor(*from, key, [&](NodeRef r, int h) {
      got = r;
      hops = h;
    });
    o.sim.run();
    EXPECT_EQ(got.node, expected) << "key " << key;
    EXPECT_GE(hops, 0);
  }
}

TEST(Ring, LookupHopsLogarithmic) {
  TestOverlay o(256);
  Rng rng(3);
  for (HostId h = 0; h < 256; ++h) o.ring->create_node(h);
  o.ring->bootstrap();
  auto nodes = o.ring->alive_nodes();
  double total_hops = 0;
  int count = 200;
  for (int t = 0; t < count; ++t) {
    Id key = rng.next();
    ChordNode* from = nodes[rng.below(nodes.size())];
    o.ring->find_successor(*from, key,
                           [&](NodeRef, int h) { total_hops += h; });
  }
  o.sim.run();
  // log2(256) = 8; average should be around half that, generously < 10.
  EXPECT_LT(total_hops / count, 10.0);
  EXPECT_GT(total_hops / count, 1.0);
}

TEST(Ring, LookupFromSingleNode) {
  TestOverlay o(4);
  ChordNode& only = o.ring->create_node(0);
  o.ring->bootstrap();
  NodeRef got;
  o.ring->find_successor(only, 12345, [&](NodeRef r, int) { got = r; });
  o.sim.run();
  EXPECT_EQ(got.node, &only);
}

TEST(Ring, ProtocolJoinThenStabilizeConverges) {
  TestOverlay o(24);
  for (HostId h = 0; h < 16; ++h) o.ring->create_node(h);
  o.ring->bootstrap();
  ChordNode& gateway = *o.ring->alive_nodes()[0];
  // Join 8 more nodes through the protocol.
  for (HostId h = 16; h < 24; ++h) {
    ChordNode& n = o.ring->create_node(h);
    o.ring->protocol_join(n, gateway, nullptr);
    o.sim.run();
  }
  o.ring->run_stabilization(30, 100 * kMillisecond);
  // After stabilization, every node's successor/predecessor must match
  // the oracle ring.
  auto nodes = o.ring->alive_nodes();
  std::sort(nodes.begin(), nodes.end(),
            [](auto* a, auto* b) { return a->id() < b->id(); });
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ChordNode* succ = nodes[(i + 1) % nodes.size()];
    EXPECT_EQ(nodes[i]->successor().node, succ)
        << "node " << i << " successor diverged";
    ChordNode* pred = nodes[(i + nodes.size() - 1) % nodes.size()];
    EXPECT_EQ(nodes[i]->predecessor().node, pred)
        << "node " << i << " predecessor diverged";
  }
}

TEST(Ring, MaintenanceTrafficIsCounted) {
  TestOverlay o(16);
  for (HostId h = 0; h < 16; ++h) o.ring->create_node(h);
  o.ring->bootstrap();
  auto before = o.ring->maintenance_traffic().messages;
  o.ring->run_stabilization(2, 100 * kMillisecond);
  EXPECT_GT(o.ring->maintenance_traffic().messages, before);
}

TEST(Ring, PnsPrefersLowLatencyFingers) {
  // Matrix topology: host 0 is near hosts 1-4 (1ms) and far from the
  // rest (100ms). PNS fingers of node 0 should prefer near candidates
  // whenever the finger interval offers a choice.
  const std::size_t n = 32;
  std::vector<SimTime> m(n * n, 100 * kMillisecond);
  for (std::size_t i = 0; i < n; ++i) m[i * n + i] = 0;
  for (HostId h = 1; h <= 4; ++h) {
    m[0 * n + h] = m[h * n + 0] = 1 * kMillisecond;
  }
  Simulator sim;
  MatrixLatencyModel topo(n, std::move(m));
  Network net(sim, topo);
  Ring::Options with_pns;
  with_pns.pns = true;
  with_pns.seed = 7;
  Ring ring(net, with_pns);
  for (HostId h = 0; h < n; ++h) ring.create_node(h);
  ring.bootstrap();

  Ring::Options no_pns = with_pns;
  no_pns.pns = false;
  Ring ring2(net, no_pns);
  for (HostId h = 0; h < n; ++h) ring2.create_node(h);
  ring2.bootstrap();

  auto finger_latency_sum = [&](Ring& r) {
    ChordNode* node0 = nullptr;
    for (ChordNode* c : r.alive_nodes()) {
      if (c->host() == 0) node0 = c;
    }
    SimTime total = 0;
    for (const NodeRef& f : node0->finger_table()) {
      if (f.valid()) total += topo.latency(0, f.node->host());
    }
    return total;
  };
  EXPECT_LE(finger_latency_sum(ring), finger_latency_sum(ring2));
}

TEST(Ring, PnsFingersStayInValidInterval) {
  TestOverlay o(64, /*pns=*/true);
  for (HostId h = 0; h < 64; ++h) o.ring->create_node(h);
  o.ring->bootstrap();
  for (ChordNode* node : o.ring->alive_nodes()) {
    for (int i = 0; i < kIdBits - 1; ++i) {
      NodeRef f = node->finger_table()[static_cast<std::size_t>(i)];
      if (!f.valid() || f.node == node) continue;
      Id start = node->finger_start(i);
      Id end = node->id() + (Id{1} << (i + 1));
      // Either a true interval candidate, or the fallback successor of
      // the interval start (when the interval is empty of nodes).
      bool in_interval = in_closed_open(f.id, start, end);
      bool is_fallback = f.node == o.ring->oracle_successor(start);
      EXPECT_TRUE(in_interval || is_fallback);
    }
  }
}

TEST(Ring, ProtocolPnsFingerRefreshPrefersCloseCandidates) {
  // Host 0 is 1 ms from hosts 1-5 and 100 ms from everything else.
  // After protocol stabilization with PNS, node 0's fingers should use
  // close candidates whenever its finger interval offers one in the
  // owner's successor list.
  const std::size_t n = 48;
  std::vector<SimTime> m(n * n, 100 * kMillisecond);
  for (std::size_t i = 0; i < n; ++i) m[i * n + i] = 0;
  for (HostId h = 1; h <= 5; ++h) {
    m[0 * n + h] = m[h * n + 0] = 1 * kMillisecond;
  }
  Simulator sim;
  MatrixLatencyModel topo(n, std::move(m));
  Network net(sim, topo);
  Ring::Options opts;
  opts.pns = true;
  opts.seed = 21;
  Ring ring(net, opts);
  for (HostId h = 0; h < n; ++h) ring.create_node(h);
  // Exact neighbours, but strip fingers down to the bare successor so
  // the protocol has to build them.
  for (ChordNode* node : ring.alive_nodes()) ring.fix_neighbors(*node);
  for (ChordNode* node : ring.alive_nodes()) {
    for (int i = 0; i < kIdBits; ++i) node->set_finger(i, node->successor());
  }
  ring.run_stabilization(3 * kIdBits, 50 * kMillisecond);
  // Every refreshed finger must be either in its valid interval or the
  // interval-start's owner (fallback); and fingers must be usable.
  ChordNode* node0 = nullptr;
  for (ChordNode* c : ring.alive_nodes()) {
    if (c->host() == 0) node0 = c;
  }
  ASSERT_NE(node0, nullptr);
  int checked = 0;
  for (int i = 0; i < kIdBits - 1; ++i) {
    NodeRef f = node0->finger_table()[static_cast<std::size_t>(i)];
    if (!f.valid() || f.node == node0) continue;
    Id start = node0->finger_start(i);
    Id end = node0->id() + (Id{1} << (i + 1));
    bool in_interval = in_closed_open(f.id, start, end);
    bool is_fallback = f.node == ring.oracle_successor(start);
    EXPECT_TRUE(in_interval || is_fallback) << "finger " << i;
    ++checked;
  }
  EXPECT_GT(checked, 10);
  // Lookups still resolve correctly with protocol-built PNS fingers.
  Rng rng(22);
  for (int t = 0; t < 20; ++t) {
    Id key = rng.next();
    NodeRef got;
    ring.find_successor(*node0, key, [&](NodeRef r, int) { got = r; });
    sim.run();
    EXPECT_EQ(got.node, ring.oracle_successor(key));
  }
}

TEST(Ring, LeaveRepairsNeighborhood) {
  TestOverlay o(32);
  for (HostId h = 0; h < 32; ++h) o.ring->create_node(h);
  o.ring->bootstrap();
  auto nodes = o.ring->alive_nodes();
  std::sort(nodes.begin(), nodes.end(),
            [](auto* a, auto* b) { return a->id() < b->id(); });
  ChordNode* victim = nodes[5];
  ChordNode* pred = nodes[4];
  ChordNode* succ = nodes[6];
  o.ring->leave(*victim);
  EXPECT_FALSE(victim->alive());
  EXPECT_EQ(pred->successor().node, succ);
  EXPECT_EQ(succ->predecessor().node, pred);
  EXPECT_EQ(o.ring->alive_count(), 31u);
}

TEST(Ring, RejoinAtChosenSplitPoint) {
  TestOverlay o(32);
  for (HostId h = 0; h < 32; ++h) o.ring->create_node(h);
  o.ring->bootstrap();
  auto nodes = o.ring->alive_nodes();
  std::sort(nodes.begin(), nodes.end(),
            [](auto* a, auto* b) { return a->id() < b->id(); });
  ChordNode* victim = nodes[10];
  ChordNode* heavy = nodes[20];
  Id split = heavy->id() - (heavy->id() - nodes[19]->id()) / 2;
  o.ring->leave(*victim);
  o.ring->rejoin(*victim, split);
  EXPECT_TRUE(victim->alive());
  EXPECT_EQ(victim->id(), split);
  EXPECT_EQ(heavy->predecessor().node, victim);
  EXPECT_EQ(victim->successor().node, heavy);
  EXPECT_EQ(o.ring->oracle_successor(split), victim);
}

TEST(Ring, LookupsStillCorrectAfterManyMigrations) {
  TestOverlay o(64);
  Rng rng(5);
  for (HostId h = 0; h < 64; ++h) o.ring->create_node(h);
  o.ring->bootstrap();
  for (int t = 0; t < 20; ++t) {
    auto nodes = o.ring->alive_nodes();
    ChordNode* victim = nodes[rng.below(nodes.size())];
    ChordNode* anchor = nodes[rng.below(nodes.size())];
    if (victim == anchor || !anchor->predecessor().valid()) continue;
    Id split = anchor->predecessor().id +
               clockwise_distance(anchor->predecessor().id, anchor->id()) / 2;
    if (!in_open(split, anchor->predecessor().id, anchor->id())) continue;
    if (o.ring->oracle_successor(split)->id() == split) continue;
    o.ring->leave(*victim);
    o.ring->rejoin(*victim, split);
  }
  o.ring->refresh_all_fingers();
  auto nodes = o.ring->alive_nodes();
  for (int t = 0; t < 50; ++t) {
    Id key = rng.next();
    ChordNode* expected = o.ring->oracle_successor(key);
    NodeRef got;
    o.ring->find_successor(*nodes[rng.below(nodes.size())], key,
                           [&](NodeRef r, int) { got = r; });
    o.sim.run();
    EXPECT_EQ(got.node, expected);
  }
}

TEST(Ring, NodeIdsDeterministicPerSeed) {
  TestOverlay a(8, false, 42), b(8, false, 42), c(8, false, 43);
  ChordNode& na = a.ring->create_node(0);
  ChordNode& nb = b.ring->create_node(0);
  ChordNode& nc = c.ring->create_node(0);
  EXPECT_EQ(na.id(), nb.id());
  EXPECT_NE(na.id(), nc.id());
}

}  // namespace
}  // namespace lmk
