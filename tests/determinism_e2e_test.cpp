// Repeat-run determinism regression: the whole experimental claim of
// the reproduction rests on bit-identical, seed-reproducible simulation
// runs (DESIGN.md "Correctness tooling"). This test drives a small but
// complete scenario — protocol joins on a latency topology, bulk and
// networked indexing, tree- and naive-routed range queries in both
// reply modes — twice from the same seed in fresh processes' worth of
// state, and asserts the per-query hop counts, result sets, timings and
// byte counts are identical. Any wall-clock read, unseeded draw, or
// unordered-container iteration order leaking into a result-affecting
// path shows up here as a diff.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/index_platform.hpp"

namespace lmk {
namespace {

struct QueryTrace {
  int hops = 0;
  SimTime response_time = 0;
  SimTime max_latency = 0;
  std::uint64_t query_bytes = 0;
  std::uint64_t result_bytes = 0;
  std::uint64_t candidates = 0;
  std::vector<std::uint64_t> results;  // merged ids, arrival order

  bool operator==(const QueryTrace&) const = default;
};

struct RunTrace {
  std::vector<QueryTrace> queries;
  std::vector<int> insert_hops;
  std::uint64_t events = 0;
  std::uint64_t total_bytes = 0;

  bool operator==(const RunTrace&) const = default;
};

RunTrace run_scenario(std::uint64_t seed, RoutingMode routing) {
  RunTrace trace;
  Rng rng(seed);

  DelaySpaceModel::Options topo;
  topo.hosts = 28;
  topo.seed = rng.fork().next();
  DelaySpaceModel topology(topo);
  Simulator sim;
  Network net(sim, topology);

  Ring::Options ropts;
  ropts.seed = rng.fork().next();
  Ring ring(net, ropts);
  for (HostId h = 0; h < 24; ++h) ring.create_node(h);
  ring.bootstrap();

  IndexPlatform::Options popts;
  popts.top_k = 5;
  popts.routing = routing;
  IndexPlatform platform(ring, popts);
  auto scheme =
      platform.register_scheme("det-e2e", uniform_boundary(3, 0.0, 1.0),
                               /*rotate=*/true);

  // Bulk-load a clustered-ish point set.
  Rng data_rng = rng.fork();
  std::vector<IndexPoint> points;
  points.reserve(300);
  for (int i = 0; i < 300; ++i) {
    IndexPoint p;
    for (int d = 0; d < 3; ++d) p.push_back(data_rng.uniform());
    points.push_back(std::move(p));
  }
  platform.bulk_insert(scheme, points);

  // Four more nodes join through the Chord protocol while further
  // entries arrive through the network path.
  Rng join_rng = rng.fork();
  for (HostId h = 24; h < 28; ++h) {
    ChordNode& fresh = ring.create_node(h);
    auto nodes = ring.alive_nodes();
    ChordNode& gateway = *nodes[join_rng.below(nodes.size() - 1)];
    ring.protocol_join(fresh, gateway, nullptr);
    sim.run();
  }
  ring.refresh_all_fingers();

  Rng insert_rng = rng.fork();
  for (int i = 0; i < 40; ++i) {
    IndexPoint p;
    for (int d = 0; d < 3; ++d) p.push_back(insert_rng.uniform());
    auto nodes = ring.alive_nodes();
    ChordNode& origin = *nodes[insert_rng.below(nodes.size())];
    platform.insert_via_network(
        origin, scheme, static_cast<std::uint64_t>(1000 + i), std::move(p),
        [&trace](int hops) { trace.insert_hops.push_back(hops); });
  }
  sim.run();
  // Joins shift key ownership; pull every entry back to its owner (this
  // also exercises the deterministic store sweep in repair_replication)
  // before asserting placement.
  platform.repair_replication();
  platform.check_placement_invariant();

  // Range queries from random origins, alternating reply modes.
  Rng query_rng = rng.fork();
  trace.queries.resize(20);
  for (int qi = 0; qi < 20; ++qi) {
    IndexPoint center;
    for (int d = 0; d < 3; ++d) center.push_back(query_rng.uniform());
    double radius = 0.05 + 0.15 * query_rng.uniform();
    auto nodes = ring.alive_nodes();
    ChordNode& origin = *nodes[query_rng.below(nodes.size())];
    ReplyMode mode = qi % 2 == 0 ? ReplyMode::kAllMatches : ReplyMode::kTopK;
    platform.range_query(
        origin, scheme, center, radius, mode,
        [&trace, qi](const IndexPlatform::QueryOutcome& o) {
          QueryTrace& q = trace.queries[static_cast<std::size_t>(qi)];
          q.hops = o.hops;
          q.response_time = o.response_time;
          q.max_latency = o.max_latency;
          q.query_bytes = o.query_bytes;
          q.result_bytes = o.result_bytes;
          q.candidates = o.candidates;
          q.results = o.results;
        });
    sim.run();
  }

  trace.events = sim.events_executed();
  trace.total_bytes = net.total_traffic().bytes;
  return trace;
}

TEST(DeterminismE2E, TreeRoutingIsBitIdenticalAcrossRuns) {
  RunTrace a = run_scenario(0xfeedbeef, RoutingMode::kTree);
  RunTrace b = run_scenario(0xfeedbeef, RoutingMode::kTree);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (std::size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].hops, b.queries[i].hops) << "query " << i;
    EXPECT_EQ(a.queries[i].results, b.queries[i].results) << "query " << i;
  }
  EXPECT_EQ(a, b);
}

TEST(DeterminismE2E, NaiveRoutingIsBitIdenticalAcrossRuns) {
  RunTrace a = run_scenario(0xc0ffee, RoutingMode::kNaive);
  RunTrace b = run_scenario(0xc0ffee, RoutingMode::kNaive);
  EXPECT_EQ(a, b);
}

TEST(DeterminismE2E, DifferentSeedsDiverge) {
  // Sanity check that the trace is sensitive at all — otherwise the
  // equality assertions above would vacuously pass.
  RunTrace a = run_scenario(1, RoutingMode::kTree);
  RunTrace b = run_scenario(2, RoutingMode::kTree);
  EXPECT_NE(a, b);
}

TEST(DeterminismE2E, QueriesReturnedSomething) {
  RunTrace a = run_scenario(0xfeedbeef, RoutingMode::kTree);
  std::size_t nonempty = 0;
  for (const QueryTrace& q : a.queries) {
    if (!q.results.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, a.queries.size() / 2);
  EXPECT_EQ(a.insert_hops.size(), 40u);
}

}  // namespace
}  // namespace lmk
