// Tests for the evaluation harness: brute-force ground truth, recall,
// QueryStats aggregation, and the experiment driver's caching paths.
#include <gtest/gtest.h>

#include "eval/experiment.hpp"
#include "landmark/selection.hpp"
#include "workload/synthetic.hpp"

namespace lmk {
namespace {

TEST(GroundTruth, KnnOrderedAscendingWithTieBreak) {
  // Distances: id0 -> 3, id1 -> 1, id2 -> 1, id3 -> 2.
  std::vector<double> d{3, 1, 1, 2};
  auto knn = knn_bruteforce(4, [&](std::size_t i) { return d[i]; }, 3);
  ASSERT_EQ(knn.size(), 3u);
  EXPECT_EQ(knn[0], 1u);  // tie with id2 broken by id
  EXPECT_EQ(knn[1], 2u);
  EXPECT_EQ(knn[2], 3u);
}

TEST(GroundTruth, KnnWithKLargerThanDataset) {
  std::vector<double> d{2, 1};
  auto knn = knn_bruteforce(2, [&](std::size_t i) { return d[i]; }, 10);
  ASSERT_EQ(knn.size(), 2u);
  EXPECT_EQ(knn[0], 1u);
}

TEST(GroundTruth, RangeBruteforceInclusive) {
  std::vector<double> d{0.5, 1.0, 1.5};
  auto in = range_bruteforce(3, [&](std::size_t i) { return d[i]; }, 1.0);
  EXPECT_EQ(in, (std::vector<std::uint64_t>{0, 1}));
}

TEST(GroundTruth, RecallDefinition) {
  std::vector<std::uint64_t> truth{1, 2, 3, 4};
  std::vector<std::uint64_t> got{2, 4, 9};
  EXPECT_DOUBLE_EQ(recall(truth, got), 0.5);
  EXPECT_DOUBLE_EQ(recall(truth, truth), 1.0);
  EXPECT_DOUBLE_EQ(recall({}, got), 1.0);  // empty truth: nothing to miss
  EXPECT_DOUBLE_EQ(recall(truth, {}), 0.0);
}

TEST(QueryStatsAgg, FoldsOutcomes) {
  QueryStats stats;
  IndexPlatform::QueryOutcome a;
  a.hops = 4;
  a.response_time = 100 * kMillisecond;
  a.max_latency = 200 * kMillisecond;
  a.query_bytes = 100;
  a.result_bytes = 50;
  a.query_messages = 3;
  a.index_nodes = 2;
  a.subqueries = 5;
  a.candidates = 40;
  a.max_node_candidates = 30;
  IndexPlatform::QueryOutcome b = a;
  b.hops = 8;
  b.lost_subqueries = 1;
  stats.add(a, 1.0);
  stats.add(b, 0.5);
  EXPECT_DOUBLE_EQ(stats.recall.mean(), 0.75);
  EXPECT_DOUBLE_EQ(stats.hops.mean(), 6.0);
  EXPECT_DOUBLE_EQ(stats.response_ms.mean(), 100.0);
  EXPECT_DOUBLE_EQ(stats.total_bytes.mean(), 150.0);
  EXPECT_DOUBLE_EQ(stats.candidates.mean(), 40.0);
  EXPECT_EQ(stats.incomplete, 1u);
  // Header and row stay in sync.
  EXPECT_EQ(QueryStats::header().size(), stats.row("x").size());
}

TEST(QueryStatsAgg, P95LatencyFromSamples) {
  QueryStats stats;
  for (int i = 1; i <= 100; ++i) {
    IndexPlatform::QueryOutcome o;
    o.max_latency = i * kMillisecond;
    stats.add(o, 1.0);
  }
  EXPECT_EQ(stats.latency_samples_ms.size(), 100u);
  EXPECT_NEAR(stats.p95_latency_ms(), 95.0, 1.0);
  QueryStats empty;
  EXPECT_DOUBLE_EQ(empty.p95_latency_ms(), 0.0);
}

TEST(ExperimentDriver, PrecomputedTruthMatchesLazyTruth) {
  SyntheticConfig cfg;
  cfg.objects = 800;
  cfg.dims = 8;
  cfg.clusters = 3;
  cfg.deviation = 6;
  Rng rng(50);
  auto data = generate_clustered(cfg, rng);
  auto queries = generate_queries(cfg, data, 10, rng);
  L2Space space;
  double max_dist = max_theoretical_distance(cfg);
  auto make_exp = [&]() {
    Rng lm_rng(51);
    auto landmarks = greedy_selection(
        space, std::span<const DenseVector>(data.points), 4, lm_rng);
    ExperimentConfig ecfg;
    ecfg.nodes = 16;
    ecfg.seed = 52;
    return std::make_unique<SimilarityExperiment<L2Space>>(
        ecfg, space, data.points,
        LandmarkMapper<L2Space>(space, landmarks,
                                uniform_boundary(4, 0, max_dist)),
        "truth-test");
  };
  auto lazy = make_exp();
  lazy->set_queries(queries);
  QueryStats s_lazy = lazy->run_batch(0.05 * max_dist);

  auto pre = make_exp();
  auto truth = SimilarityExperiment<L2Space>::compute_truth(
      space, data.points, queries, 10);
  pre->set_queries(queries, truth);
  QueryStats s_pre = pre->run_batch(0.05 * max_dist);

  EXPECT_DOUBLE_EQ(s_lazy.recall.mean(), s_pre.recall.mean());
  EXPECT_DOUBLE_EQ(s_lazy.hops.mean(), s_pre.hops.mean());
}

TEST(ExperimentDriver, LoadCurveSortedDescending) {
  SyntheticConfig cfg;
  cfg.objects = 500;
  cfg.dims = 4;
  cfg.clusters = 2;
  cfg.deviation = 3;
  Rng rng(53);
  auto data = generate_clustered(cfg, rng);
  L2Space space;
  Rng lm_rng(54);
  auto landmarks = greedy_selection(
      space, std::span<const DenseVector>(data.points), 3, lm_rng);
  ExperimentConfig ecfg;
  ecfg.nodes = 16;
  ecfg.seed = 55;
  SimilarityExperiment<L2Space> exp(
      ecfg, space, data.points,
      LandmarkMapper<L2Space>(space, landmarks, uniform_boundary(3, 0, 100)),
      "curve-test");
  auto curve = exp.load_curve();
  EXPECT_EQ(curve.size(), 16u);
  std::size_t total = 0;
  for (std::size_t i = 0; i + 1 < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i + 1]);
    total += curve[i];
  }
  total += curve.back();
  EXPECT_EQ(total, 500u);
}

TEST(ExperimentDriver, RotationFlagReachesScheme) {
  SyntheticConfig cfg;
  cfg.objects = 100;
  cfg.dims = 4;
  cfg.clusters = 2;
  cfg.deviation = 3;
  Rng rng(56);
  auto data = generate_clustered(cfg, rng);
  L2Space space;
  Rng lm_rng(57);
  auto landmarks = greedy_selection(
      space, std::span<const DenseVector>(data.points), 3, lm_rng);
  ExperimentConfig ecfg;
  ecfg.nodes = 8;
  ecfg.seed = 58;
  ecfg.rotate = true;
  SimilarityExperiment<L2Space> exp(
      ecfg, space, data.points,
      LandmarkMapper<L2Space>(space, landmarks, uniform_boundary(3, 0, 100)),
      "rotated-scheme");
  EXPECT_NE(exp.platform().scheme(exp.index().scheme_id()).rotation, 0u);
}

}  // namespace
}  // namespace lmk
