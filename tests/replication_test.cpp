// Tests for entry replication: placement on successor chains, crash
// tolerance, deduplicated query results, removal of all copies, and the
// repair procedure after membership changes.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>

#include "core/index_platform.hpp"

namespace lmk {
namespace {

struct Stack {
  Stack(std::size_t hosts, std::uint64_t seed, std::size_t replication)
      : topo(hosts, 10 * kMillisecond), net(sim, topo) {
    Ring::Options ropts;
    ropts.seed = seed;
    ring = std::make_unique<Ring>(net, ropts);
    for (HostId h = 0; h < hosts; ++h) ring->create_node(h);
    ring->bootstrap();
    IndexPlatform::Options popts;
    popts.replication = replication;
    platform = std::make_unique<IndexPlatform>(*ring, popts);
  }

  std::set<std::uint64_t> query_all(std::uint32_t scheme,
                                    const Region& region) {
    std::optional<IndexPlatform::QueryOutcome> outcome;
    platform->region_query(*ring->alive_nodes()[0], scheme, region,
                           IndexPoint(region.dims(), 0.5),
                           ReplyMode::kAllMatches,
                           [&](const auto& o) { outcome = o; });
    sim.run();
    EXPECT_TRUE(outcome.has_value() && outcome->complete);
    last = outcome;
    return {outcome->results.begin(), outcome->results.end()};
  }

  Simulator sim;
  ConstantLatencyModel topo;
  Network net;
  std::unique_ptr<Ring> ring;
  std::unique_ptr<IndexPlatform> platform;
  std::optional<IndexPlatform::QueryOutcome> last;
};

TEST(Replication, PlacesRCopiesOnDistinctNodes) {
  Stack s(16, 1, /*replication=*/3);
  auto scheme =
      s.platform->register_scheme("r3", uniform_boundary(1, 0, 1), false);
  s.platform->insert(scheme, 42, IndexPoint{0.5});
  EXPECT_EQ(s.platform->scheme_entries(scheme), 3u);
  int holders = 0;
  for (ChordNode* n : s.ring->alive_nodes()) {
    if (!s.platform->store(*n, scheme).empty()) ++holders;
  }
  EXPECT_EQ(holders, 3);
  s.platform->check_placement_invariant();
}

TEST(Replication, TinyRingCapsReplication) {
  Stack s(2, 2, /*replication=*/5);
  auto scheme =
      s.platform->register_scheme("tiny", uniform_boundary(1, 0, 1), false);
  s.platform->insert(scheme, 1, IndexPoint{0.7});
  // Only 2 distinct nodes exist.
  EXPECT_EQ(s.platform->scheme_entries(scheme), 2u);
}

TEST(Replication, QueryResultsAreDeduplicated) {
  Stack s(12, 3, /*replication=*/3);
  auto scheme =
      s.platform->register_scheme("dedup", uniform_boundary(2, 0, 1), false);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    s.platform->insert(scheme, static_cast<std::uint64_t>(i),
                       IndexPoint{rng.uniform(), rng.uniform()});
  }
  auto got = s.query_all(scheme, Region{{Interval{0, 1}, Interval{0, 1}}});
  EXPECT_EQ(got.size(), 100u);
  EXPECT_EQ(s.last->results.size(), 100u);  // no duplicates in the list
}

TEST(Replication, SurvivesCrashOfTheOwner) {
  Stack s(24, 5, /*replication=*/2);
  auto scheme =
      s.platform->register_scheme("crash", uniform_boundary(1, 0, 1), false);
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    s.platform->insert(scheme, static_cast<std::uint64_t>(i),
                       IndexPoint{rng.uniform()});
  }
  // Crash 3 (non-adjacent) nodes; with 2 copies on consecutive nodes,
  // no entry disappears as long as no two adjacent nodes die.
  auto alive = s.ring->alive_nodes();
  std::sort(alive.begin(), alive.end(),
            [](auto* a, auto* b) { return a->id() < b->id(); });
  s.ring->fail(*alive[2]);
  s.ring->fail(*alive[9]);
  s.ring->fail(*alive[17]);
  for (ChordNode* n : s.ring->alive_nodes()) s.ring->fix_neighbors(*n);
  s.ring->refresh_all_fingers();
  auto got = s.query_all(scheme, Region{{Interval{0, 1}}});
  EXPECT_EQ(got.size(), 300u);  // nothing lost
}

TEST(Replication, UnreplicatedBaselineLosesCrashedEntries) {
  Stack s(24, 5, /*replication=*/1);
  auto scheme =
      s.platform->register_scheme("crash1", uniform_boundary(1, 0, 1), false);
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    s.platform->insert(scheme, static_cast<std::uint64_t>(i),
                       IndexPoint{rng.uniform()});
  }
  auto alive = s.ring->alive_nodes();
  std::size_t lost = s.platform->entries_on(*alive[4]);
  ASSERT_GT(lost, 0u);
  s.ring->fail(*alive[4]);
  for (ChordNode* n : s.ring->alive_nodes()) s.ring->fix_neighbors(*n);
  s.ring->refresh_all_fingers();
  auto got = s.query_all(scheme, Region{{Interval{0, 1}}});
  EXPECT_EQ(got.size(), 300u - lost);
}

TEST(Replication, RemoveErasesAllCopies) {
  Stack s(16, 7, /*replication=*/3);
  auto scheme =
      s.platform->register_scheme("rm", uniform_boundary(1, 0, 1), false);
  s.platform->insert(scheme, 5, IndexPoint{0.25});
  EXPECT_EQ(s.platform->scheme_entries(scheme), 3u);
  EXPECT_TRUE(s.platform->remove(scheme, 5, IndexPoint{0.25}));
  EXPECT_EQ(s.platform->scheme_entries(scheme), 0u);
}

TEST(Replication, RepairRestoresDegreeAfterCrash) {
  Stack s(20, 8, /*replication=*/3);
  auto scheme =
      s.platform->register_scheme("repair", uniform_boundary(1, 0, 1), false);
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    s.platform->insert(scheme, static_cast<std::uint64_t>(i),
                       IndexPoint{rng.uniform()});
  }
  EXPECT_EQ(s.platform->scheme_entries(scheme), 600u);
  auto alive = s.ring->alive_nodes();
  s.ring->fail(*alive[3]);
  s.ring->fail(*alive[11]);
  for (ChordNode* n : s.ring->alive_nodes()) s.ring->fix_neighbors(*n);
  s.ring->refresh_all_fingers();
  // Copies on the dead nodes are gone; repair re-replicates from the
  // survivors and restores exactly 3 copies of all 200 entries.
  EXPECT_LT(s.platform->scheme_entries(scheme), 600u);
  s.platform->repair_replication();
  EXPECT_EQ(s.platform->scheme_entries(scheme), 600u);
  s.platform->check_placement_invariant();
  auto got = s.query_all(scheme, Region{{Interval{0, 1}}});
  EXPECT_EQ(got.size(), 200u);
}

TEST(Replication, RepairIsIdempotent) {
  Stack s(12, 10, /*replication=*/2);
  auto scheme =
      s.platform->register_scheme("idem", uniform_boundary(1, 0, 1), false);
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    s.platform->insert(scheme, static_cast<std::uint64_t>(i),
                       IndexPoint{rng.uniform()});
  }
  s.platform->repair_replication();
  EXPECT_EQ(s.platform->scheme_entries(scheme), 200u);
  s.platform->repair_replication();
  EXPECT_EQ(s.platform->scheme_entries(scheme), 200u);
  s.platform->check_placement_invariant();
}

TEST(Replication, RepairNormalizesAfterMigrationDrift) {
  // Migration transfers move only the owned range; replicas drift.
  // repair_replication restores the invariant.
  Stack s(24, 12, /*replication=*/2);
  auto scheme =
      s.platform->register_scheme("drift", uniform_boundary(1, 0, 1), false);
  Rng rng(13);
  for (int i = 0; i < 400; ++i) {
    s.platform->insert(scheme, static_cast<std::uint64_t>(i),
                       IndexPoint{std::clamp(rng.normal(0.8, 0.05), 0.0,
                                             1.0)});
  }
  LoadBalancer::Options bopts;
  bopts.delta = 0.0;
  bopts.probe_level = 4;
  LoadBalancer lb(*s.ring, bopts, s.platform->balancer_hooks());
  lb.run_until_stable(10);
  s.platform->repair_replication();
  s.platform->check_placement_invariant();
  EXPECT_EQ(s.platform->scheme_entries(scheme), 800u);
  auto got = s.query_all(scheme, Region{{Interval{0, 1}}});
  EXPECT_EQ(got.size(), 400u);
}

}  // namespace
}  // namespace lmk
