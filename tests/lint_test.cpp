// Unit tests for the lmk-lint rule matchers (tools/lint) on fixture
// snippets: the determinism rules that gate the simulator core must
// themselves be pinned by tests, or a matcher regression would silently
// turn the gate off.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "lint_rules.hpp"

namespace lmk::lint {
namespace {

std::vector<std::string> rules_of(const std::vector<Finding>& fs) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  for (const auto& f : fs) out.push_back(f.rule);
  return out;
}

bool has_rule(const std::vector<Finding>& fs, std::string_view rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [rule](const Finding& f) { return f.rule == rule; });
}

// ----- banned-source -----

TEST(BannedSource, FlagsRandomDevice) {
  auto fs = lint_source("a.cpp", "int x = std::random_device{}();\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "banned-source");
  EXPECT_EQ(fs[0].line, 1);
}

TEST(WallClock, FlagsChronoClocks) {
  EXPECT_TRUE(has_rule(
      lint_source("a.cpp", "auto t = std::chrono::steady_clock::now();\n"),
      "wall-clock"));
  EXPECT_TRUE(has_rule(
      lint_source("a.cpp", "auto t = std::chrono::system_clock::now();\n"),
      "wall-clock"));
  EXPECT_TRUE(has_rule(
      lint_source("a.cpp",
                  "auto t = std::chrono::high_resolution_clock::now();\n"),
      "wall-clock"));
}

TEST(WallClock, FlagsPosixClockReads) {
  EXPECT_TRUE(has_rule(
      lint_source("a.cpp", "clock_gettime(CLOCK_MONOTONIC, &ts);\n"),
      "wall-clock"));
  EXPECT_TRUE(has_rule(lint_source("a.cpp", "gettimeofday(&tv, nullptr);\n"),
                       "wall-clock"));
}

TEST(WallClock, SimilarIdentifiersAreFine) {
  // clockwise_distance (src/common/ring_math.hpp) contains "clock" but
  // is not a clock token.
  EXPECT_TRUE(
      lint_source("a.cpp", "Id d = clockwise_distance(a, b);\n").empty());
}

TEST(BannedSource, FlagsCStyleCalls) {
  EXPECT_TRUE(has_rule(lint_source("a.cpp", "seed = time(nullptr);\n"),
                       "banned-source"));
  EXPECT_TRUE(has_rule(lint_source("a.cpp", "int r = rand();\n"),
                       "banned-source"));
  EXPECT_TRUE(has_rule(lint_source("a.cpp", "srand(42);\n"),
                       "banned-source"));
}

TEST(BannedSource, FlagsUnportableEngines) {
  EXPECT_TRUE(has_rule(lint_source("a.cpp", "std::mt19937 gen(seed);\n"),
                       "banned-source"));
  EXPECT_TRUE(has_rule(
      lint_source("a.cpp", "std::default_random_engine e;\n"),
      "banned-source"));
}

TEST(BannedSource, NoFalsePositiveOnSimilarIdentifiers) {
  // response_time( and SimTime are not time() calls; a member .time()
  // belongs to whatever object defines it, not the C library.
  auto fs = lint_source(
      "a.cpp",
      "SimTime response_time(int x);\n"
      "auto v = stats.response_time(3);\n"
      "double t = obj.time();\n"
      "int runtime = 0; (void)runtime;\n");
  EXPECT_TRUE(fs.empty()) << fs.size() << " findings, first: "
                          << (fs.empty() ? "" : fs[0].message);
}

TEST(BannedSource, IgnoresCommentsAndStrings) {
  auto fs = lint_source(
      "a.cpp",
      "// calling time() here would be wrong\n"
      "const char* s = \"std::random_device\";\n"
      "/* steady_clock in a block comment */\n");
  EXPECT_TRUE(fs.empty());
}

TEST(BannedSource, RngModuleIsExempt) {
  FileOptions opts;
  opts.rng_module = true;
  auto fs = lint_source("src/common/rng.cpp",
                        "std::random_device rd;\n", opts);
  EXPECT_TRUE(fs.empty());
}

TEST(WallClock, BenchMayReadWallClocksButNotEntropy) {
  FileOptions opts;
  opts.bench = true;
  EXPECT_TRUE(lint_source("bench/bench_perf.cpp",
                          "auto t0 = std::chrono::steady_clock::now();\n",
                          opts)
                  .empty());
  EXPECT_TRUE(has_rule(lint_source("bench/bench_perf.cpp",
                                   "std::random_device rd;\n", opts),
                       "banned-source"));
}

TEST(WallClock, AllowCommentSuppresses) {
  auto fs = lint_source(
      "a.cpp",
      "// lmk-lint: allow(wall-clock) startup banner only\n"
      "auto t = std::chrono::system_clock::now();\n");
  EXPECT_TRUE(fs.empty());
}

// ----- banned-abort -----

TEST(BannedAbort, FlagsDirectTerminationCalls) {
  EXPECT_TRUE(has_rule(lint_source("a.cpp", "if (bad) std::abort();\n"),
                       "banned-abort"));
  EXPECT_TRUE(has_rule(lint_source("a.cpp", "std::exit(1);\n"),
                       "banned-abort"));
  EXPECT_TRUE(has_rule(lint_source("a.cpp", "abort();\n"), "banned-abort"));
  EXPECT_TRUE(has_rule(lint_source("a.cpp", "quick_exit(0);\n"),
                       "banned-abort"));
}

TEST(BannedAbort, CheckModuleIsExempt) {
  FileOptions opts;
  opts.check_module = true;
  EXPECT_TRUE(lint_source("src/common/check.hpp",
                          "  std::abort();\n", opts)
                  .empty());
}

TEST(BannedAbort, SimilarIdentifiersAndMembersAreFine) {
  // on_exit_requested( is its own identifier; tx.abort() is a member
  // call on whatever tx is; `exit` without a call is a plain name.
  auto fs = lint_source("a.cpp",
                        "void on_exit_requested(int);\n"
                        "tx.abort();\n"
                        "handler->exit();\n"
                        "bool exit_flag = false; (void)exit_flag;\n");
  EXPECT_TRUE(fs.empty()) << fs.size() << " findings, first: "
                          << (fs.empty() ? "" : fs[0].message);
}

TEST(BannedAbort, AllowCommentSuppresses) {
  auto fs = lint_source(
      "a.cpp",
      "std::abort();  // lmk-lint: allow(banned-abort) fuzzer entry\n");
  EXPECT_TRUE(fs.empty());
}

// ----- unordered-iteration -----

TEST(UnorderedIteration, FlagsRangeForOverUnorderedMap) {
  auto fs = lint_source(
      "a.cpp",
      "std::unordered_map<int, double> acc;\n"
      "double total = 0;\n"
      "for (const auto& [k, v] : acc) total += v;\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "unordered-iteration");
  EXPECT_EQ(fs[0].line, 3);
}

TEST(UnorderedIteration, FlagsRangeForOverUnorderedSet) {
  auto fs = lint_source("a.cpp",
                        "std::unordered_set<std::uint32_t> terms;\n"
                        "for (std::uint32_t t : terms) use(t);\n");
  EXPECT_EQ(rules_of(fs),
            std::vector<std::string>{"unordered-iteration"});
}

TEST(UnorderedIteration, FlagsIteratorWalk) {
  auto fs = lint_source(
      "a.cpp",
      "std::unordered_map<int, int> m;\n"
      "for (auto it = m.begin(); it != m.end(); ++it) emit(*it);\n");
  EXPECT_EQ(rules_of(fs),
            std::vector<std::string>{"unordered-iteration"});
}

TEST(UnorderedIteration, MultiLineDeclarationAndLoop) {
  auto fs = lint_source(
      "a.cpp",
      "std::unordered_map<std::uint64_t,\n"
      "                   // lmk-lint: allow(pointer-key-unordered) test\n"
      "                   std::unordered_map<const Node*, Reply>>\n"
      "    pending_;\n"
      "for (auto& [qid, replies] :\n"
      "     pending_) {\n"
      "  flush(qid);\n"
      "}\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 5);
}

TEST(UnorderedIteration, JustificationCommentSuppresses) {
  auto fs = lint_source(
      "a.cpp",
      "std::unordered_map<int, double> acc;\n"
      "// lmk-lint: iteration-order-independent\n"
      "for (const auto& [k, v] : acc) check(v);\n");
  EXPECT_TRUE(fs.empty());
  fs = lint_source(
      "a.cpp",
      "std::unordered_set<int> s;\n"
      "for (int v : s) check(v);  // lmk-lint: iteration-order-independent\n");
  EXPECT_TRUE(fs.empty());
}

TEST(UnorderedIteration, OrderedContainersAreFine) {
  auto fs = lint_source("a.cpp",
                        "std::map<int, double> acc;\n"
                        "std::vector<int> v;\n"
                        "for (const auto& [k, x] : acc) out(k, x);\n"
                        "for (int i : v) out2(i);\n");
  EXPECT_TRUE(fs.empty());
}

TEST(UnorderedIteration, MembershipTestsAreFine) {
  auto fs = lint_source("a.cpp",
                        "std::unordered_set<int> seen;\n"
                        "if (seen.count(3) != 0) return;\n"
                        "seen.insert(4);\n");
  EXPECT_TRUE(fs.empty());
}

TEST(UnorderedIteration, CompanionHeaderDeclarationsAreSeen) {
  FileOptions opts;
  opts.companion_decls =
      "class P {\n"
      "  std::unordered_map<const Node*, Store> stores_;\n"
      "};\n";
  auto fs = lint_source("p.cpp",
                        "void P::sweep() {\n"
                        "  for (auto& [n, s] : stores_) visit(s);\n"
                        "}\n",
                        opts);
  EXPECT_EQ(rules_of(fs),
            std::vector<std::string>{"unordered-iteration"});
}

// ----- pointer-key -----

TEST(PointerKey, FlagsPointerKeyedOrderedContainers) {
  EXPECT_TRUE(has_rule(
      lint_source("a.cpp", "std::map<Node*, int> by_node;\n"),
      "pointer-key"));
  EXPECT_TRUE(has_rule(
      lint_source("a.cpp", "std::set<const ChordNode*> probes;\n"),
      "pointer-key"));
}

TEST(PointerKey, PointerValuesAreFine) {
  EXPECT_TRUE(lint_source("a.cpp",
                          "std::map<std::uint64_t, Node*> owner_of;\n")
                  .empty());
}

TEST(PointerKey, AllowCommentSuppresses) {
  auto fs = lint_source(
      "a.cpp",
      "// lmk-lint: allow(pointer-key) diagnostic dump, order not output\n"
      "std::set<Node*> dump;\n");
  EXPECT_TRUE(fs.empty());
}

// ----- pointer-key-unordered -----

TEST(PointerKeyUnordered, FlagsUnjustifiedPointerKeyedHashContainers) {
  EXPECT_TRUE(has_rule(
      lint_source("a.cpp",
                  "std::unordered_map<const ChordNode*, Store> stores_;\n"),
      "pointer-key-unordered"));
  EXPECT_TRUE(has_rule(
      lint_source("a.cpp", "std::unordered_set<ChordNode*> seen;\n"),
      "pointer-key-unordered"));
}

TEST(PointerKeyUnordered, PointerValuesAndIdKeysAreFine) {
  EXPECT_TRUE(
      lint_source("a.cpp",
                  "std::unordered_map<std::uint64_t, Node*> owner_of;\n")
          .empty());
}

TEST(PointerKeyUnordered, AllowCommentSuppresses) {
  auto fs = lint_source(
      "a.cpp",
      "// lmk-lint: allow(pointer-key-unordered) membership test only\n"
      "std::unordered_set<Node*> seen;\n"
      "if (seen.count(p) != 0) return;\n");
  EXPECT_TRUE(fs.empty());
}

// ----- mutable-global -----

TEST(MutableGlobal, FlagsKeywordlessNamespaceScopeVariable) {
  auto fs = lint_source("a.cpp",
                        "namespace lmk {\n"
                        "namespace {\n"
                        "std::mutex g_mu;\n"
                        "std::size_t g_counter = 0;\n"
                        "}  // namespace\n"
                        "}  // namespace lmk\n");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "mutable-global");
  EXPECT_EQ(fs[0].line, 3);
  EXPECT_EQ(fs[1].line, 4);
}

TEST(MutableGlobal, FlagsStaticLocalAndThreadLocal) {
  EXPECT_TRUE(has_rule(lint_source("a.cpp",
                                   "int next_id() {\n"
                                   "  static int counter = 0;\n"
                                   "  return ++counter;\n"
                                   "}\n"),
                       "mutable-global"));
  EXPECT_TRUE(has_rule(
      lint_source("a.cpp", "thread_local bool g_in_job = false;\n"),
      "mutable-global"));
  // `static thread_local` is one declaration, not two findings.
  auto fs = lint_source("a.cpp", "static thread_local int g_tls = 0;\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "mutable-global");
}

TEST(MutableGlobal, ConstFamilyIsFine) {
  EXPECT_TRUE(lint_source("a.cpp",
                          "namespace lmk {\n"
                          "const std::size_t kNodes = 64;\n"
                          "constexpr double kFactor = 1.5;\n"
                          "constexpr double kTable[] = {1.0, 2.0};\n"
                          "}  // namespace lmk\n")
                  .empty());
  EXPECT_TRUE(
      lint_source("a.cpp",
                  "double cached() {\n"
                  "  static const double kOnce = expensive();\n"
                  "  static constexpr int kBits = 12;\n"
                  "  return kOnce + kBits;\n"
                  "}\n")
          .empty());
}

TEST(MutableGlobal, FunctionsMembersAndLocalsAreFine) {
  // Function declarations/definitions, static member functions, class
  // bodies and ordinary locals all carry no static storage.
  EXPECT_TRUE(lint_source("a.cpp",
                          "namespace lmk {\n"
                          "static void helper(int x);\n"
                          "std::vector<int> make_list(std::size_t n);\n"
                          "class Pool {\n"
                          " public:\n"
                          "  static Pool& instance();\n"
                          "  std::size_t threads_ = 0;\n"
                          "};\n"
                          "int run() {\n"
                          "  std::size_t local = 0;\n"
                          "  return static_cast<int>(local);\n"
                          "}\n"
                          "}  // namespace lmk\n")
                  .empty());
}

TEST(MutableGlobal, UsingAliasesAndForwardDeclsAreFine) {
  EXPECT_TRUE(lint_source("a.cpp",
                          "namespace lmk {\n"
                          "using Clock = VirtualClock;\n"
                          "typedef std::uint64_t HostId;\n"
                          "struct Simulator;\n"
                          "class Network;\n"
                          "static_assert(sizeof(int) == 4);\n"
                          "}  // namespace lmk\n")
                  .empty());
}

TEST(MutableGlobal, AllowCommentSuppresses) {
  EXPECT_TRUE(lint_source("a.cpp",
                          "namespace lmk {\n"
                          "namespace {\n"
                          "// lmk-lint: allow(mutable-global) pool guard\n"
                          "std::mutex g_pool_mu;\n"
                          "}  // namespace\n"
                          "}  // namespace lmk\n")
                  .empty());
  EXPECT_TRUE(
      lint_source("a.cpp",
                  "int f() {\n"
                  "  // lmk-lint: allow(mutable-global) call counter\n"
                  "  static int calls = 0;\n"
                  "  return ++calls;\n"
                  "}\n")
          .empty());
}

// ----- infrastructure -----

TEST(Strip, PreservesLayoutAndNewlines) {
  std::string src = "int a; // c1\n\"str\\\"ing\"\n/* b\nb */ int c;\n";
  std::string out = strip_comments_and_strings(src);
  EXPECT_EQ(out.size(), src.size());
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(out.find("c1"), std::string::npos);
  EXPECT_EQ(out.find("str"), std::string::npos);
  EXPECT_NE(out.find("int c;"), std::string::npos);
}

TEST(Strip, DigitSeparatorIsNotACharLiteral) {
  std::string out = strip_comments_and_strings("int x = 1'000'000; f(x);\n");
  EXPECT_NE(out.find("f(x);"), std::string::npos);
}

TEST(CollectVars, FindsLocalsMembersAndInitializers) {
  std::string stripped =
      "std::unordered_map<int, V> a;\n"
      "std::unordered_set<K> b = make();\n"
      "std::unordered_map<K, std::vector<V>> c{};\n"
      "using Alias = std::unordered_map<int, int>;\n";
  auto vars = collect_unordered_vars(stripped);
  EXPECT_NE(std::find(vars.begin(), vars.end(), "a"), vars.end());
  EXPECT_NE(std::find(vars.begin(), vars.end(), "b"), vars.end());
  EXPECT_NE(std::find(vars.begin(), vars.end(), "c"), vars.end());
  EXPECT_EQ(std::find(vars.begin(), vars.end(), "Alias"), vars.end());
}

// ----- hot-alloc -----

TEST(HotAlloc, FlagsNewInsideMarkedRegion) {
  auto fs = lint_source("a.cpp",
                        "// lmk-hot-path\n"
                        "void f() { int* p = new int(3); use(p); }\n"
                        "// lmk-hot-path-end\n");
  EXPECT_TRUE(has_rule(fs, "hot-alloc"));
}

TEST(HotAlloc, OutsideRegionIsFine) {
  auto fs =
      lint_source("a.cpp", "void f() { int* p = new int(3); use(p); }\n");
  EXPECT_FALSE(has_rule(fs, "hot-alloc"));
}

TEST(HotAlloc, PlacementNewAndIncludeAreExempt) {
  auto fs = lint_source("a.cpp",
                        "// lmk-hot-path\n"
                        "#include <new>\n"
                        "void f() { ::new (buf) D(std::move(v)); }\n"
                        "// lmk-hot-path-end\n");
  EXPECT_FALSE(has_rule(fs, "hot-alloc"));
}

TEST(HotAlloc, FlagsMakeUniqueAndStringConstruction) {
  auto fs = lint_source("a.cpp",
                        "// lmk-hot-path\n"
                        "void f() {\n"
                        "  auto p = std::make_unique<int>(3);\n"
                        "  std::string s = name();\n"
                        "}\n"
                        "// lmk-hot-path-end\n");
  auto rules = rules_of(fs);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "hot-alloc"), 2);
}

TEST(HotAlloc, StringViewAndReferencesAreFine) {
  auto fs = lint_source("a.cpp",
                        "// lmk-hot-path\n"
                        "void f(std::string_view name,\n"
                        "       const std::string& ref);\n"
                        "// lmk-hot-path-end\n");
  EXPECT_FALSE(has_rule(fs, "hot-alloc"));
}

TEST(HotAlloc, UnreservedGrowthFlaggedReservedGrowthFine) {
  auto fs = lint_source("a.cpp",
                        "// lmk-hot-path\n"
                        "void f() { xs.push_back(1); }\n"
                        "// lmk-hot-path-end\n");
  EXPECT_TRUE(has_rule(fs, "hot-alloc"));
  auto ok = lint_source("a.cpp",
                        "void setup() { xs.reserve(100); }\n"
                        "// lmk-hot-path\n"
                        "void f() { xs.push_back(1); }\n"
                        "// lmk-hot-path-end\n");
  EXPECT_FALSE(has_rule(ok, "hot-alloc"));
}

TEST(HotAlloc, CompanionHeaderReserveIsSeen) {
  FileOptions opts;
  opts.companion_decls = "void init() { xs.reserve(64); }\n";
  auto fs = lint_source("a.cpp",
                        "// lmk-hot-path\n"
                        "void f() { xs.push_back(1); }\n"
                        "// lmk-hot-path-end\n",
                        opts);
  EXPECT_FALSE(has_rule(fs, "hot-alloc"));
}

TEST(HotAlloc, CuratedHotFileNeedsNoMarkers) {
  FileOptions opts;
  opts.hot_path = true;
  auto fs = lint_source(
      "a.cpp", "void f() { int* p = new int(3); use(p); }\n", opts);
  EXPECT_TRUE(has_rule(fs, "hot-alloc"));
}

TEST(HotAlloc, AllowCommentSuppresses) {
  auto fs = lint_source("a.cpp",
                        "// lmk-hot-path\n"
                        "void f() {\n"
                        "  // lmk-lint: allow(hot-alloc) capacity warmup\n"
                        "  xs.push_back(1);\n"
                        "}\n"
                        "// lmk-hot-path-end\n");
  EXPECT_FALSE(has_rule(fs, "hot-alloc"));
}

// ----- hot-std-function -----

TEST(HotStdFunction, FlagsConstructionInHotRegion) {
  auto fs = lint_source("a.cpp",
                        "// lmk-hot-path\n"
                        "void f() { std::function<void()> cb = g(); }\n"
                        "// lmk-hot-path-end\n");
  EXPECT_TRUE(has_rule(fs, "hot-std-function"));
}

TEST(HotStdFunction, ConstRefParameterIsFine) {
  auto fs = lint_source("a.cpp",
                        "// lmk-hot-path\n"
                        "void run(const std::function<void()>& cb);\n"
                        "// lmk-hot-path-end\n");
  EXPECT_FALSE(has_rule(fs, "hot-std-function"));
}

TEST(HotStdFunction, OutsideRegionIsFine) {
  auto fs = lint_source(
      "a.cpp", "void f() { std::function<void()> cb = g(); }\n");
  EXPECT_FALSE(has_rule(fs, "hot-std-function"));
}

TEST(HotStdFunction, AllowCommentSuppresses) {
  auto fs = lint_source(
      "a.cpp",
      "// lmk-hot-path\n"
      "// lmk-lint: allow(hot-std-function) install-time only\n"
      "using Hook = std::function<void(int)>;\n"
      "// lmk-hot-path-end\n");
  EXPECT_FALSE(has_rule(fs, "hot-std-function"));
}

// ----- arena-escape -----

TEST(ArenaEscape, FlagsReturningArenaMemory) {
  auto fs = lint_source(
      "a.cpp",
      "double* scratch() { return static_cast<double*>(a.allocate(n)); }\n");
  EXPECT_TRUE(has_rule(fs, "arena-escape"));
}

TEST(ArenaEscape, FlagsMemberAssignmentOfArenaSpan) {
  auto fs = lint_source(
      "a.cpp", "void f() { coords_ = arena.allocate_span<double>(n); }\n");
  EXPECT_TRUE(has_rule(fs, "arena-escape"));
  auto gs = lint_source(
      "a.cpp", "void f() { view_ = arena.guarded_span<double>(n); }\n");
  EXPECT_TRUE(has_rule(gs, "arena-escape"));
}

TEST(ArenaEscape, LocalUseIsFine) {
  auto fs = lint_source(
      "a.cpp",
      "void f() { auto s = arena.allocate_span<double>(n); use(s); }\n");
  EXPECT_FALSE(has_rule(fs, "arena-escape"));
}

TEST(ArenaEscape, ArenaModuleIsExempt) {
  FileOptions opts;
  opts.arena_module = true;
  auto fs = lint_source(
      "a.cpp",
      "double* scratch() { return static_cast<double*>(allocate(n)); }\n",
      opts);
  EXPECT_FALSE(has_rule(fs, "arena-escape"));
}

TEST(ArenaEscape, FlagsStoredEntryViews) {
  EXPECT_TRUE(has_rule(
      lint_source("a.cpp", "std::vector<EntryView> views;\n"),
      "arena-escape"));
  EXPECT_TRUE(has_rule(
      lint_source("a.cpp", "class C { EntryView cached_; };\n"),
      "arena-escape"));
  EXPECT_FALSE(has_rule(
      lint_source("a.cpp", "void f() { EntryView v = store[i]; use(v); }\n"),
      "arena-escape"));
}

TEST(ArenaEscape, AllowCommentSuppresses) {
  auto fs = lint_source(
      "a.cpp",
      "// lmk-lint: allow(arena-escape) consumed before any mutation\n"
      "class C { EntryView cached_; };\n");
  EXPECT_FALSE(has_rule(fs, "arena-escape"));
}

// ----- handler discipline: cross-node-touch -----

TEST(CrossNodeTouch, FlagsOracleCallInMarkedHandlerRegion) {
  auto fs = lint_source("a.cpp",
                        "// lmk-handler\n"
                        "void on_query() { ChordNode* s = "
                        "ring_.oracle_successor(id); }\n"
                        "// lmk-handler-end\n");
  ASSERT_TRUE(has_rule(fs, "cross-node-touch"));
  EXPECT_EQ(fs[0].line, 2);
}

TEST(CrossNodeTouch, OutsideRegionIsFine) {
  auto fs = lint_source(
      "a.cpp",
      "void driver() { ChordNode* s = ring_.oracle_successor(id); }\n");
  EXPECT_FALSE(has_rule(fs, "cross-node-touch"));
}

TEST(CrossNodeTouch, CuratedHandlerFileNeedsNoMarkers) {
  FileOptions opts;
  opts.handler_file = true;
  auto fs = lint_source(
      "a.cpp", "void on_query() { ring_.refresh_all_fingers(); }\n", opts);
  EXPECT_TRUE(has_rule(fs, "cross-node-touch"));
}

TEST(CrossNodeTouch, DeclarationIsNotACall) {
  FileOptions opts;
  opts.handler_file = true;
  // A member named after an oracle token, without a call, is fine.
  auto fs = lint_source("a.cpp", "int fix_fingers = 0;\n", opts);
  EXPECT_FALSE(has_rule(fs, "cross-node-touch"));
}

TEST(CrossNodeTouch, AllowCommentSuppresses) {
  FileOptions opts;
  opts.handler_file = true;
  auto fs = lint_source(
      "a.cpp",
      "// lmk-lint: allow(cross-node-touch) modeled control plane\n"
      "ChordNode* s = ring_.oracle_successor(id);\n",
      opts);
  EXPECT_FALSE(has_rule(fs, "cross-node-touch"));
}

// ----- handler discipline: unforked-rng -----

TEST(UnforkedRng, FlagsSharedMemberStreamDraw) {
  auto fs = lint_source("a.cpp",
                        "// lmk-handler\n"
                        "void on_probe() { std::size_t i = "
                        "rng_.below(peers.size()); }\n"
                        "// lmk-handler-end\n");
  EXPECT_TRUE(has_rule(fs, "unforked-rng"));
}

TEST(UnforkedRng, ForkedLocalStreamIsFine) {
  // fork() is the sanctioned pattern, and draws on the resulting local
  // (no trailing underscore) are not shared state.
  auto fs = lint_source("a.cpp",
                        "// lmk-handler\n"
                        "void on_probe() {\n"
                        "  Rng local = rng_.fork();\n"
                        "  std::size_t i = local.below(n);\n"
                        "}\n"
                        "// lmk-handler-end\n");
  EXPECT_FALSE(has_rule(fs, "unforked-rng"));
}

TEST(UnforkedRng, NonRngReceiverIsFine) {
  // queue_.next() ends in '_' but the receiver is not an rng.
  auto fs = lint_source("a.cpp",
                        "// lmk-handler\n"
                        "void on_tick() { Event e = queue_.next(); }\n"
                        "// lmk-handler-end\n");
  EXPECT_FALSE(has_rule(fs, "unforked-rng"));
}

TEST(UnforkedRng, OutsideRegionIsFine) {
  auto fs = lint_source(
      "a.cpp", "void setup() { std::size_t i = rng_.below(n); }\n");
  EXPECT_FALSE(has_rule(fs, "unforked-rng"));
}

TEST(UnforkedRng, AllowCommentSuppresses) {
  FileOptions opts;
  opts.handler_file = true;
  auto fs = lint_source(
      "a.cpp",
      "// lmk-lint: allow(unforked-rng) single-threaded setup path\n"
      "std::size_t i = query_rng_.below(n);\n",
      opts);
  EXPECT_FALSE(has_rule(fs, "unforked-rng"));
}

// ----- handler discipline: raw-schedule -----

TEST(RawSchedule, FlagsScheduleInsideHandler) {
  auto fs = lint_source("a.cpp",
                        "// lmk-handler\n"
                        "void on_msg() { sim_.schedule_after(d, cb); }\n"
                        "// lmk-handler-end\n");
  EXPECT_TRUE(has_rule(fs, "raw-schedule"));
  auto gs = lint_source("a.cpp",
                        "// lmk-handler\n"
                        "void on_msg() { sim_.schedule_at(t, cb); }\n"
                        "// lmk-handler-end\n");
  EXPECT_TRUE(has_rule(gs, "raw-schedule"));
}

TEST(RawSchedule, DriverCodeOutsideRegionIsFine) {
  auto fs = lint_source(
      "a.cpp", "void run_rounds() { sim_.schedule_after(d, cb); }\n");
  EXPECT_FALSE(has_rule(fs, "raw-schedule"));
}

TEST(RawSchedule, AllowCommentSuppresses) {
  FileOptions opts;
  opts.handler_file = true;
  auto fs = lint_source(
      "a.cpp",
      "// lmk-lint: allow(raw-schedule) node-local retransmit timer\n"
      "sim_.schedule_after(d, cb);\n",
      opts);
  EXPECT_FALSE(has_rule(fs, "raw-schedule"));
}

// ----- lint-module exemption -----

TEST(LintModule, MarkerMentionsDoNotOpenRegions) {
  // The lint's own sources mention the marker strings in comments and
  // doc text; without the exemption those would open phantom regions
  // and flag the quoted token catalogues.
  FileOptions opts;
  opts.lint_module = true;
  auto fs = lint_source("a.cpp",
                        "// Regions open with lmk-handler markers.\n"
                        "void scan() { sim_.schedule_after(d, cb); }\n"
                        "// lmk-hot-path is the other marker.\n"
                        "void f() { auto* p = new int[8]; }\n",
                        opts);
  EXPECT_FALSE(has_rule(fs, "raw-schedule"));
  EXPECT_FALSE(has_rule(fs, "hot-alloc"));
}

// ----- --stats plumbing -----

TEST(LintStats, AccumulatesPerRuleTiming) {
  LintStats stats;
  auto fs = lint_source("a.cpp", "void f() { g(); }\n", FileOptions{},
                        &stats);
  EXPECT_TRUE(fs.empty());
  ASSERT_FALSE(stats.rule_seconds.empty());
  // The shared single-pass tokenization is timed first, then each rule
  // family in run order.
  EXPECT_EQ(stats.rule_seconds.front().first, "scan-index");
  bool has_hot_alloc = false;
  for (const auto& [name, secs] : stats.rule_seconds) {
    if (name == "hot-alloc") has_hot_alloc = true;
    EXPECT_GE(secs, 0.0);
  }
  EXPECT_TRUE(has_hot_alloc);
}

}  // namespace
}  // namespace lmk::lint
