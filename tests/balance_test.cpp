// Tests for load balancing: static rotation offsets and dynamic load
// migration (probing, split-point choice, leave/rejoin transfers, and
// the placement invariant across migrations).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "balance/migration.hpp"
#include "balance/rotation.hpp"
#include "common/stats.hpp"
#include "core/index_platform.hpp"

namespace lmk {
namespace {

struct Stack {
  Stack(std::size_t hosts, std::uint64_t seed)
      : topo(hosts, 10 * kMillisecond), net(sim, topo) {
    Ring::Options ropts;
    ropts.seed = seed;
    ring = std::make_unique<Ring>(net, ropts);
    for (HostId h = 0; h < hosts; ++h) ring->create_node(h);
    ring->bootstrap();
    platform = std::make_unique<IndexPlatform>(*ring);
  }

  Simulator sim;
  ConstantLatencyModel topo;
  Network net;
  std::unique_ptr<Ring> ring;
  std::unique_ptr<IndexPlatform> platform;
};

TEST(Rotation, OffsetsDifferPerIndexName) {
  EXPECT_NE(rotation_offset("images"), rotation_offset("documents"));
  EXPECT_EQ(rotation_offset("images"), rotation_offset("images"));
}

TEST(Rotation, ShiftsHotspotPlacement) {
  // Two schemes with identical entry distributions; without rotation the
  // same nodes host both hot spots, with rotation they split.
  Stack s(64, 1);
  std::uint32_t plain_a = s.platform->register_scheme(
      "same-a", uniform_boundary(1, 0, 1), false);
  std::uint32_t plain_b = s.platform->register_scheme(
      "same-b", uniform_boundary(1, 0, 1), false);
  std::uint32_t rot_a = s.platform->register_scheme(
      "rot-a", uniform_boundary(1, 0, 1), true);
  std::uint32_t rot_b = s.platform->register_scheme(
      "rot-b", uniform_boundary(1, 0, 1), true);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    // Hot region near the upper boundary (the paper's hyperball effect).
    IndexPoint p{1.0 - std::abs(rng.normal(0, 0.02))};
    s.platform->insert(plain_a, i, p);
    s.platform->insert(plain_b, i, p);
    s.platform->insert(rot_a, i, p);
    s.platform->insert(rot_b, i, p);
  }
  // Without rotation, per-node loads of the two schemes coincide; with
  // rotation they should not.
  auto max_load_overlap = [&s](std::uint32_t a, std::uint32_t b) {
    std::size_t both = 0, either = 0;
    for (ChordNode* n : s.ring->alive_nodes()) {
      bool ha = !s.platform->store(*n, a).empty();
      bool hb = !s.platform->store(*n, b).empty();
      if (ha && hb) ++both;
      if (ha || hb) ++either;
    }
    return either == 0 ? 0.0
                       : static_cast<double>(both) /
                             static_cast<double>(either);
  };
  EXPECT_GT(max_load_overlap(plain_a, plain_b), 0.99);
  EXPECT_LT(max_load_overlap(rot_a, rot_b), 0.5);
}

TEST(Migration, ProbeSetRespectsLevelAndExcludesSelf) {
  Stack s(64, 3);
  LoadBalancer::Options opts;
  opts.probe_level = 1;
  LoadBalancer lb(*s.ring, opts, s.platform->balancer_hooks());
  ChordNode* n = s.ring->alive_nodes()[0];
  auto probes = lb.probe_set(*n);
  EXPECT_FALSE(probes.empty());
  for (ChordNode* p : probes) EXPECT_NE(p, n);
  // Level-1 probes are exactly the valid routing-table neighbours.
  // lmk-lint: allow(pointer-key) membership-equality check only
  std::set<ChordNode*> expected;
  for (const NodeRef& r : n->successor_list()) {
    if (r.valid()) expected.insert(r.node);
  }
  for (const NodeRef& r : n->finger_table()) {
    if (r.valid() && r.node != n) expected.insert(r.node);
  }
  if (n->predecessor().valid()) expected.insert(n->predecessor().node);
  // lmk-lint: allow(pointer-key) same membership-equality check
  std::set<ChordNode*> got(probes.begin(), probes.end());
  EXPECT_EQ(got, expected);
}

TEST(Migration, HigherProbeLevelSeesMore) {
  Stack s(256, 4);
  LoadBalancer::Options l1;
  l1.probe_level = 1;
  LoadBalancer::Options l3;
  l3.probe_level = 3;
  l3.max_probe_set = 100000;
  l1.max_probe_set = 100000;
  LoadBalancer lb1(*s.ring, l1, s.platform->balancer_hooks());
  LoadBalancer lb3(*s.ring, l3, s.platform->balancer_hooks());
  ChordNode* n = s.ring->alive_nodes()[0];
  EXPECT_GT(lb3.probe_set(*n).size(), lb1.probe_set(*n).size());
}

TEST(Migration, MovesLoadOffTheHotNode) {
  Stack s(32, 5);
  std::uint32_t scheme = s.platform->register_scheme(
      "hot", uniform_boundary(1, 0, 1), false);
  Rng rng(6);
  // Skewed load: everything in a narrow band of the key space.
  for (int i = 0; i < 1000; ++i) {
    s.platform->insert(scheme, i, IndexPoint{rng.uniform(0.90, 0.95)});
  }
  auto loads_before = s.platform->load_distribution();
  std::size_t max_before =
      *std::max_element(loads_before.begin(), loads_before.end());
  LoadBalancer::Options opts;
  opts.delta = 0.0;
  opts.probe_level = 4;
  LoadBalancer lb(*s.ring, opts, s.platform->balancer_hooks());
  int migrations = lb.run_until_stable();
  EXPECT_GT(migrations, 0);
  s.platform->check_placement_invariant();
  auto loads_after = s.platform->load_distribution();
  std::size_t max_after =
      *std::max_element(loads_after.begin(), loads_after.end());
  EXPECT_LT(max_after, max_before);
  // Entry conservation: nothing lost or duplicated.
  EXPECT_EQ(s.platform->total_entries(), 1000u);
}

TEST(Migration, FlattensLoadSubstantially) {
  Stack s(64, 7);
  std::uint32_t scheme = s.platform->register_scheme(
      "skew", uniform_boundary(2, 0, 1), false);
  Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    IndexPoint p{std::clamp(rng.normal(0.8, 0.05), 0.0, 1.0),
                 std::clamp(rng.normal(0.2, 0.05), 0.0, 1.0)};
    s.platform->insert(scheme, i, p);
  }
  std::vector<double> before;
  for (std::size_t l : s.platform->load_distribution()) {
    before.push_back(static_cast<double>(l));
  }
  LoadBalancer::Options opts;
  opts.delta = 0.0;
  opts.probe_level = 4;
  LoadBalancer lb(*s.ring, opts, s.platform->balancer_hooks());
  lb.run_until_stable();
  std::vector<double> after;
  for (std::size_t l : s.platform->load_distribution()) {
    after.push_back(static_cast<double>(l));
  }
  EXPECT_LT(gini(after), gini(before) * 0.7);
  s.platform->check_placement_invariant();
}

TEST(Migration, NoMigrationWhenAlreadyEven) {
  Stack s(32, 9);
  std::uint32_t scheme = s.platform->register_scheme(
      "even", uniform_boundary(1, 0, 1), false);
  Rng rng(10);
  for (int i = 0; i < 2000; ++i) {
    s.platform->insert(scheme, i, IndexPoint{rng.uniform()});
  }
  // Uniform entries over uniform node ids: loads are roughly even, and a
  // large delta should suppress migrations entirely.
  LoadBalancer::Options opts;
  opts.delta = 5.0;
  opts.probe_level = 2;
  LoadBalancer lb(*s.ring, opts, s.platform->balancer_hooks());
  EXPECT_EQ(lb.run_round(), 0);
}

TEST(Migration, SingleKeyPileCannotBeSplit) {
  // All entries hash to one key (the paper's greedy-on-TREC pathology):
  // the balancer must refuse to "balance" by swapping the pile around.
  Stack s(16, 11);
  std::uint32_t scheme = s.platform->register_scheme(
      "pile", uniform_boundary(1, 0, 1), false);
  for (int i = 0; i < 500; ++i) {
    s.platform->insert(scheme, i, IndexPoint{0.777});
  }
  LoadBalancer::Options opts;
  opts.delta = 0.0;
  opts.probe_level = 4;
  LoadBalancer lb(*s.ring, opts, s.platform->balancer_hooks());
  int migrations = lb.run_until_stable(10);
  EXPECT_EQ(migrations, 0);
  EXPECT_EQ(s.platform->total_entries(), 500u);
}

TEST(Migration, MedianKeySplitsEntriesInHalf) {
  Stack s(4, 12);
  std::uint32_t scheme = s.platform->register_scheme(
      "med", uniform_boundary(1, 0, 1), false);
  Rng rng(13);
  for (int i = 0; i < 400; ++i) {
    s.platform->insert(scheme, i, IndexPoint{rng.uniform()});
  }
  for (ChordNode* n : s.ring->alive_nodes()) {
    std::size_t load = s.platform->entries_on(*n);
    if (load < 10) continue;
    Id split = s.platform->median_key(*n);
    ASSERT_TRUE(in_open(split, n->predecessor().id, n->id()))
        << "split key outside the node's range";
    std::size_t below = 0;
    for (EntryView e : s.platform->store(*n, scheme)) {
      if (in_open_closed(e.key, n->predecessor().id, split)) ++below;
    }
    EXPECT_NEAR(static_cast<double>(below), static_cast<double>(load) / 2,
                static_cast<double>(load) * 0.05 + 1);
  }
}

TEST(Migration, QueriesStillCorrectAfterBalancing) {
  Stack s(48, 14);
  std::uint32_t scheme = s.platform->register_scheme(
      "q-after", uniform_boundary(2, 0, 1), false);
  Rng rng(15);
  std::vector<IndexPoint> pts;
  for (int i = 0; i < 800; ++i) {
    IndexPoint p{std::clamp(rng.normal(0.7, 0.08), 0.0, 1.0),
                 std::clamp(rng.normal(0.3, 0.08), 0.0, 1.0)};
    s.platform->insert(scheme, i, p);
    pts.push_back(p);
  }
  LoadBalancer::Options opts;
  opts.delta = 0.0;
  opts.probe_level = 4;
  LoadBalancer lb(*s.ring, opts, s.platform->balancer_hooks());
  int migrations = lb.run_until_stable();
  EXPECT_GT(migrations, 0);
  auto nodes = s.ring->alive_nodes();
  for (int t = 0; t < 15; ++t) {
    Region r;
    for (int d = 0; d < 2; ++d) {
      double lo = rng.uniform(0, 0.9);
      r.ranges.push_back(Interval{lo, lo + 0.1});
    }
    std::set<std::uint64_t> expected;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (pts[i][0] >= r.ranges[0].lo && pts[i][0] <= r.ranges[0].hi &&
          pts[i][1] >= r.ranges[1].lo && pts[i][1] <= r.ranges[1].hi) {
        expected.insert(i);
      }
    }
    std::optional<IndexPlatform::QueryOutcome> outcome;
    s.platform->region_query(*nodes[rng.below(nodes.size())], scheme, r,
                             IndexPoint{0.5, 0.5}, ReplyMode::kAllMatches,
                             [&](const auto& o) { outcome = o; });
    s.sim.run();
    ASSERT_TRUE(outcome.has_value());
    std::set<std::uint64_t> got(outcome->results.begin(),
                                outcome->results.end());
    EXPECT_EQ(got, expected);
  }
}

TEST(Migration, NodeDistributionSkewsAfterBalancing) {
  // The paper notes the cost of migration: node ids bunch up around hot
  // key ranges, deepening the search tree there.
  Stack s(64, 16);
  std::uint32_t scheme = s.platform->register_scheme(
      "skew-ids", uniform_boundary(1, 0, 1), false);
  Rng rng(17);
  for (int i = 0; i < 3000; ++i) {
    s.platform->insert(scheme, i,
                       IndexPoint{std::clamp(rng.normal(0.9, 0.01), 0.0, 1.0)});
  }
  LoadBalancer::Options opts;
  opts.delta = 0.0;
  opts.probe_level = 4;
  LoadBalancer lb(*s.ring, opts, s.platform->balancer_hooks());
  lb.run_until_stable();
  // Count nodes whose id falls in the hot 10% of the (unrotated) key
  // space; after migrations it must exceed the uniform share.
  Boundary b = uniform_boundary(1, 0, 1);
  Id hot_lo = lph_hash(IndexPoint{0.85}, b);
  std::size_t in_hot = 0;
  for (ChordNode* n : s.ring->alive_nodes()) {
    if (n->id() >= hot_lo) ++in_hot;
  }
  EXPECT_GT(in_hot, s.ring->alive_count() * 15 / 100);
}

}  // namespace
}  // namespace lmk
