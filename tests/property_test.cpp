// Cross-cutting property tests:
//  * rotation invariance — query results must be identical with and
//    without the space-mapping rotation (rotation only relocates data);
//  * tree/naive equivalence — both routers return the same exact sets;
//  * non-uniform boundaries — per-dimension ranges of different widths
//    keep hash/cuboid/routing consistent;
//  * placement/ownership invariants under randomized workloads.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>

#include "core/index_platform.hpp"

namespace lmk {
namespace {

struct Stack {
  Stack(std::size_t hosts, std::uint64_t seed, IndexPlatform::Options popts =
                                                   IndexPlatform::Options{})
      : topo(hosts, 10 * kMillisecond), net(sim, topo) {
    Ring::Options ropts;
    ropts.seed = seed;
    ring = std::make_unique<Ring>(net, ropts);
    for (HostId h = 0; h < hosts; ++h) ring->create_node(h);
    ring->bootstrap();
    platform = std::make_unique<IndexPlatform>(*ring, popts);
  }

  std::set<std::uint64_t> query(std::uint32_t scheme, const Region& region) {
    std::optional<IndexPlatform::QueryOutcome> outcome;
    platform->region_query(*ring->alive_nodes()[0], scheme, region,
                           IndexPoint(region.dims(), 0.0),
                           ReplyMode::kAllMatches,
                           [&](const auto& o) { outcome = o; });
    sim.run();
    EXPECT_TRUE(outcome.has_value() && outcome->complete);
    return {outcome->results.begin(), outcome->results.end()};
  }

  Simulator sim;
  ConstantLatencyModel topo;
  Network net;
  std::unique_ptr<Ring> ring;
  std::unique_ptr<IndexPlatform> platform;
};

Boundary random_boundary(std::size_t dims, Rng& rng) {
  Boundary b;
  for (std::size_t d = 0; d < dims; ++d) {
    double lo = rng.uniform(-50, 50);
    double hi = lo + rng.uniform(0.5, 200);
    b.push_back(Interval{lo, hi});
  }
  return b;
}

Region random_region(const Boundary& b, Rng& rng) {
  Region r;
  for (const Interval& iv : b) {
    double a = rng.uniform(iv.lo, iv.hi);
    double c = rng.uniform(iv.lo, iv.hi);
    if (a > c) std::swap(a, c);
    r.ranges.push_back(Interval{a, c});
  }
  return r;
}

TEST(Property, RotationDoesNotChangeResults) {
  for (std::uint64_t seed : {101ull, 202ull, 303ull}) {
    Stack s(48, seed);
    Rng rng(seed + 1);
    Boundary boundary = random_boundary(3, rng);
    auto plain = s.platform->register_scheme("plain", boundary, false);
    auto rotated = s.platform->register_scheme("rotated", boundary, true);
    ASSERT_NE(s.platform->scheme(rotated).rotation, 0u);
    std::vector<IndexPoint> pts;
    for (int i = 0; i < 300; ++i) {
      IndexPoint p;
      for (const Interval& iv : boundary) {
        p.push_back(rng.uniform(iv.lo, iv.hi));
      }
      s.platform->insert(plain, static_cast<std::uint64_t>(i), p);
      s.platform->insert(rotated, static_cast<std::uint64_t>(i), p);
      pts.push_back(std::move(p));
    }
    for (int t = 0; t < 15; ++t) {
      Region r = random_region(boundary, rng);
      EXPECT_EQ(s.query(plain, r), s.query(rotated, r))
          << "seed " << seed << " trial " << t;
    }
  }
}

TEST(Property, TreeAndNaiveReturnIdenticalSets) {
  Rng rng(55);
  Boundary boundary = random_boundary(2, rng);
  IndexPlatform::Options tree_opts;
  IndexPlatform::Options naive_opts;
  naive_opts.routing = RoutingMode::kNaive;
  naive_opts.naive_split_depth = 7;
  Stack tree(32, 7, tree_opts);
  Stack naive(32, 7, naive_opts);
  auto st = tree.platform->register_scheme("t", boundary, false);
  auto sn = naive.platform->register_scheme("n", boundary, false);
  for (int i = 0; i < 400; ++i) {
    IndexPoint p;
    for (const Interval& iv : boundary) p.push_back(rng.uniform(iv.lo, iv.hi));
    tree.platform->insert(st, static_cast<std::uint64_t>(i), p);
    naive.platform->insert(sn, static_cast<std::uint64_t>(i), p);
  }
  for (int t = 0; t < 20; ++t) {
    Region r = random_region(boundary, rng);
    EXPECT_EQ(tree.query(st, r), naive.query(sn, r)) << "trial " << t;
  }
}

TEST(Property, NonUniformBoundariesStayExact) {
  Rng rng(77);
  for (int round = 0; round < 4; ++round) {
    std::size_t dims = 1 + rng.below(4);
    Boundary boundary = random_boundary(dims, rng);
    Stack s(24, 500 + static_cast<std::uint64_t>(round));
    auto scheme = s.platform->register_scheme("nu", boundary, round % 2 == 1);
    std::vector<IndexPoint> pts;
    for (int i = 0; i < 250; ++i) {
      IndexPoint p;
      for (const Interval& iv : boundary) {
        p.push_back(rng.uniform(iv.lo, iv.hi));
      }
      s.platform->insert(scheme, static_cast<std::uint64_t>(i), p);
      pts.push_back(std::move(p));
    }
    s.platform->check_placement_invariant();
    for (int t = 0; t < 10; ++t) {
      Region r = random_region(boundary, rng);
      std::set<std::uint64_t> expected;
      for (std::size_t i = 0; i < pts.size(); ++i) {
        bool inside = true;
        for (std::size_t d = 0; d < dims; ++d) {
          if (pts[i][d] < r.ranges[d].lo || pts[i][d] > r.ranges[d].hi) {
            inside = false;
            break;
          }
        }
        if (inside) expected.insert(i);
      }
      EXPECT_EQ(s.query(scheme, r), expected)
          << "round " << round << " trial " << t;
    }
  }
}

TEST(Property, HashStaysInCuboidForNonUniformBoundaries) {
  Rng rng(88);
  for (int t = 0; t < 200; ++t) {
    std::size_t dims = 1 + rng.below(5);
    Boundary b = random_boundary(dims, rng);
    IndexPoint p;
    for (const Interval& iv : b) p.push_back(rng.uniform(iv.lo, iv.hi));
    Id key = lph_hash(p, b);
    for (int len : {3, 17, 39}) {
      Region cub = cuboid_region(Prefix{prefix(key, len), len}, b);
      for (std::size_t d = 0; d < dims; ++d) {
        EXPECT_LE(cub.ranges[d].lo - 1e-9, p[d]);
        EXPECT_GE(cub.ranges[d].hi + 1e-9, p[d]);
      }
    }
  }
}

TEST(Property, QuerySplitPartitionsRegionExactly) {
  // The two children of a straddle split tile the parent region: their
  // union is the parent and they overlap only on the plane.
  Rng rng(99);
  SchemeRouting sch;
  sch.boundary = random_boundary(3, rng);
  sch.query_message_bytes = query_message_size(3);
  for (int t = 0; t < 100; ++t) {
    RangeQuery q;
    Region r = random_region(sch.boundary, rng);
    ASSERT_TRUE(make_query(sch, 1, 0, r, IndexPoint(3, 0.0), &q));
    if (q.prefix.length == kIdBits) continue;
    auto subs = query_split(q, q.prefix.length + 1);
    if (subs.size() != 2) continue;
    int dim = -1;
    double mid =
        split_plane(q.prefix.key, q.prefix.length + 1, sch.boundary, &dim);
    auto sd = static_cast<std::size_t>(dim);
    EXPECT_DOUBLE_EQ(subs[0].region.ranges[sd].lo, mid);
    EXPECT_DOUBLE_EQ(subs[1].region.ranges[sd].hi, mid);
    EXPECT_DOUBLE_EQ(subs[0].region.ranges[sd].hi, q.region.ranges[sd].hi);
    EXPECT_DOUBLE_EQ(subs[1].region.ranges[sd].lo, q.region.ranges[sd].lo);
    for (std::size_t d = 0; d < 3; ++d) {
      if (d == sd) continue;
      EXPECT_DOUBLE_EQ(subs[0].region.ranges[d].lo, q.region.ranges[d].lo);
      EXPECT_DOUBLE_EQ(subs[1].region.ranges[d].hi, q.region.ranges[d].hi);
    }
  }
}

TEST(Property, PlacementInvariantUnderRandomOps) {
  Rng rng(111);
  Stack s(20, 9);
  Boundary b = random_boundary(2, rng);
  auto scheme = s.platform->register_scheme("ops", b, true);
  std::vector<std::pair<std::uint64_t, IndexPoint>> live;
  std::uint64_t next_id = 0;
  for (int step = 0; step < 500; ++step) {
    double u = rng.uniform();
    if (u < 0.6 || live.empty()) {
      IndexPoint p;
      for (const Interval& iv : b) p.push_back(rng.uniform(iv.lo, iv.hi));
      s.platform->insert(scheme, next_id, p);
      live.emplace_back(next_id, std::move(p));
      ++next_id;
    } else {
      std::size_t victim = rng.below(live.size());
      EXPECT_TRUE(s.platform->remove(scheme, live[victim].first,
                                     live[victim].second));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    if (step % 100 == 99) s.platform->check_placement_invariant();
  }
  EXPECT_EQ(s.platform->scheme_entries(scheme), live.size());
}

}  // namespace
}  // namespace lmk
