// Tests for the lmk-sched schedule & fault exploration gate: the
// .sched plan text format, seeded plan generation, fault-injector
// determinism, and the explorer's recover-by-quiescence oracle on the
// clean tree (the mutation-catching path is exercised end-to-end by
// scripts/check.sh --sched-smoke).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "audit/explorer.hpp"
#include "sim/fault.hpp"

namespace lmk {
namespace {

FaultPlan sample_plan() {
  FaultPlan p;
  p.tie = TieBreak::kShuffled;
  p.shuffle_seed = 77;
  p.directives = {
      {FaultKind::kDrop, 4, 0, 0, 0, 0, 0},
      {FaultKind::kDuplicate, 9, 2 * kMillisecond, 0, 0, 0, 0},
      {FaultKind::kDelay, 15, 30 * kMillisecond, 0, 0, 0, 0},
      {FaultKind::kReorder, 21, 0, 0, 0, 0, 0},
      {FaultKind::kPartition, 0, 0, 2, 9, 50 * kMillisecond,
       250 * kMillisecond},
      {FaultKind::kCrash, 0, 0, 7, 0, 100 * kMillisecond, 0},
      {FaultKind::kRejoin, 0, 0, 7, 0, 400 * kMillisecond, 0},
  };
  return p;
}

audit::ExploreOptions small_opts() {
  audit::ExploreOptions opts;
  opts.hosts = 16;
  opts.entries = 120;
  opts.queries = 4;
  opts.stab_rounds = 2;
  opts.plans = 4;
  opts.directives = 6;
  return opts;
}

// ----- .sched text format -----

TEST(FaultPlanText, RoundTripPreservesEveryDirectiveKind) {
  FaultPlan p = sample_plan();
  std::string text = p.to_text();
  FaultPlan q;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse(text, &q, &error)) << error;
  EXPECT_EQ(q.tie, TieBreak::kShuffled);
  EXPECT_EQ(q.shuffle_seed, 77u);
  ASSERT_EQ(q.directives.size(), p.directives.size());
  // Serializing the parse result reproduces the text byte-for-byte, so
  // a committed reproducer survives any number of edit round-trips.
  EXPECT_EQ(q.to_text(), text);
}

TEST(FaultPlanText, ParseErrorsCarryLineNumbers) {
  FaultPlan q;
  std::string error;
  EXPECT_FALSE(FaultPlan::parse("tie fifo 0\nwarp 3\n", &q, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("warp"), std::string::npos) << error;
  EXPECT_FALSE(FaultPlan::parse("tie sideways 1\n", &q, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_FALSE(FaultPlan::parse("drop 5 6\n", &q, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
  // Inverted partition window (until < at) is malformed, not silent.
  EXPECT_FALSE(FaultPlan::parse("partition 1 2 900 300\n", &q, &error));
  EXPECT_NE(error.find("malformed"), std::string::npos) << error;
}

TEST(FaultPlanText, CommentsAndBlankLinesAreIgnored) {
  FaultPlan q;
  std::string error;
  ASSERT_TRUE(FaultPlan::parse(
      "# header\n\ntie reversed 0\n# mid comment\ndrop 12\n", &q, &error))
      << error;
  EXPECT_EQ(q.tie, TieBreak::kReversed);
  ASSERT_EQ(q.directives.size(), 1u);
  EXPECT_EQ(q.directives[0].kind, FaultKind::kDrop);
  EXPECT_EQ(q.directives[0].seq, 12u);
}

// ----- seeded generation -----

TEST(FaultPlanGenerate, DeterministicPerSeedAndSeedSensitive) {
  FaultPlan::GenOptions g;
  g.hosts = 24;
  g.sends = 1000;
  g.horizon = 600 * kMillisecond;
  g.directives = 8;
  EXPECT_EQ(FaultPlan::generate(3, g).to_text(),
            FaultPlan::generate(3, g).to_text());
  EXPECT_NE(FaultPlan::generate(3, g).to_text(),
            FaultPlan::generate(4, g).to_text());
}

TEST(FaultPlanGenerate, EveryCrashHasALaterRejoinOfTheSameHost) {
  FaultPlan::GenOptions g;
  g.hosts = 16;
  g.sends = 500;
  g.horizon = 600 * kMillisecond;
  g.directives = 10;
  g.max_crashes = 1;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FaultPlan p = FaultPlan::generate(seed, g);
    std::size_t crashes = 0;
    for (std::size_t i = 0; i < p.directives.size(); ++i) {
      const FaultDirective& d = p.directives[i];
      if (d.kind != FaultKind::kCrash) continue;
      ++crashes;
      bool paired = false;
      for (std::size_t j = i + 1; j < p.directives.size(); ++j) {
        const FaultDirective& r = p.directives[j];
        if (r.kind == FaultKind::kRejoin && r.a == d.a && r.at > d.at) {
          paired = true;
        }
      }
      EXPECT_TRUE(paired) << "seed " << seed << ": crash of host " << d.a
                          << " never rejoins";
    }
    EXPECT_LE(crashes, g.max_crashes) << "seed " << seed;
  }
}

// ----- injector + explorer on the clean tree -----

TEST(Explorer, FaultFreeScenarioPassesAndIsDeterministic) {
  const audit::ExploreOptions opts = small_opts();
  const FaultPlan none;
  audit::RunResult a = audit::run_scenario(opts, none);
  audit::RunResult b = audit::run_scenario(opts, none);
  EXPECT_FALSE(a.failed) << a.report.summary();
  EXPECT_GT(a.stats.sends, 0u);
  EXPECT_EQ(a.stats.dropped, 0u);
  EXPECT_EQ(a.stats.crashes, 0u);
  // Same options, same plan: bit-identical traffic.
  EXPECT_EQ(a.stats.sends, b.stats.sends);
  EXPECT_EQ(a.failed, b.failed);
}

TEST(Explorer, FaultedScenarioRecoversAndStatsAreDeterministic) {
  const audit::ExploreOptions opts = small_opts();
  FaultPlan::GenOptions g;
  g.hosts = opts.hosts;
  g.sends = 400;
  g.horizon = opts.horizon;
  g.directives = opts.directives;
  const FaultPlan plan = FaultPlan::generate(7, g);
  audit::RunResult a = audit::run_scenario(opts, plan);
  audit::RunResult b = audit::run_scenario(opts, plan);
  // Clean tree: whatever the faults broke must heal by quiescence.
  EXPECT_FALSE(a.failed) << a.report.summary();
  EXPECT_EQ(a.stats.sends, b.stats.sends);
  EXPECT_EQ(a.stats.dropped, b.stats.dropped);
  EXPECT_EQ(a.stats.duplicated, b.stats.duplicated);
  EXPECT_EQ(a.stats.delayed, b.stats.delayed);
  EXPECT_EQ(a.stats.reordered, b.stats.reordered);
  EXPECT_EQ(a.stats.crashes, b.stats.crashes);
  EXPECT_EQ(a.stats.rejoins, b.stats.rejoins);
}

TEST(Explorer, SmallSwarmRecoversOnCleanTree) {
  const audit::ExploreOptions opts = small_opts();
  audit::ExploreResult res = audit::explore(opts);
  EXPECT_FALSE(res.baseline_failed) << res.violation;
  EXPECT_FALSE(res.found_failure) << res.violation;
  EXPECT_GT(res.baseline_sends, 0u);
  // Baseline + one run per swarm plan.
  EXPECT_EQ(res.runs, opts.plans + 1);
}

}  // namespace
}  // namespace lmk
