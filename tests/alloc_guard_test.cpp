// Tests for the allocation-discipline instrumentation
// (common/alloc_guard.hpp). The phase-name plumbing must work in every
// build; the counters only move when the build interposes operator
// new/delete (-DLMK_ALLOC_GUARD=ON), so counter assertions are gated
// on the macro and the plain build instead asserts they stay zero.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/alloc_guard.hpp"

namespace lmk {
namespace {

TEST(AllocPhase, ScopeInstallsAndRestoresName) {
  EXPECT_EQ(current_alloc_phase(), nullptr);
  {
    AllocPhaseScope outer("outer");
    EXPECT_STREQ(current_alloc_phase(), "outer");
    {
      AllocPhaseScope inner("inner");
      EXPECT_STREQ(current_alloc_phase(), "inner");
    }
    EXPECT_STREQ(current_alloc_phase(), "outer");
  }
  EXPECT_EQ(current_alloc_phase(), nullptr);
}

TEST(AllocPhase, ExchangeReturnsPrevious) {
  const char* prev = exchange_alloc_phase("manual");
  EXPECT_EQ(prev, nullptr);
  EXPECT_STREQ(current_alloc_phase(), "manual");
  EXPECT_STREQ(exchange_alloc_phase(prev), "manual");
  EXPECT_EQ(current_alloc_phase(), nullptr);
}

TEST(AllocPhase, NameIsPerThread) {
  AllocPhaseScope phase("main-thread-phase");
  const char* seen_on_worker = "sentinel";
  std::thread worker(
      [&] { seen_on_worker = current_alloc_phase(); });
  worker.join();
  // A fresh thread starts outside any phase; scopes do not leak
  // across threads (the pool forwards phases explicitly per job).
  EXPECT_EQ(seen_on_worker, nullptr);
  EXPECT_STREQ(current_alloc_phase(), "main-thread-phase");
}

#ifdef LMK_ALLOC_GUARD

TEST(AllocGuard, ReportsEnabled) { EXPECT_TRUE(alloc_guard_enabled()); }

TEST(AllocGuard, CountsNewAndDelete) {
  AllocPhaseScope phase("count-test");
  AllocCounters before = phase.delta();
  constexpr std::size_t kBytes = 1 << 12;
  {
    auto block = std::make_unique<char[]>(kBytes);
    // Defeat any clever elision: the pointer must be materialized.
    ASSERT_NE(block.get(), nullptr);
    AllocCounters mid = phase.delta();
    EXPECT_GE(mid.allocs, before.allocs + 1);
    EXPECT_GE(mid.alloc_bytes, before.alloc_bytes + kBytes);
  }
  AllocCounters after = phase.delta();
  EXPECT_GE(after.frees, before.frees + 1);
  EXPECT_GE(after.free_bytes, before.free_bytes + kBytes);
}

TEST(AllocGuard, DeltaIsZeroOverAllocationFreeRegion) {
  // The property the bench gate enforces: code that does not touch
  // the allocator reports an exactly-zero delta, no noise floor.
  AllocPhaseScope phase("quiet");
  volatile int sink = 0;
  for (int i = 0; i < 1000; ++i) sink = sink + i;
  AllocCounters d = phase.delta();
  EXPECT_EQ(d.allocs, 0u);
  EXPECT_EQ(d.frees, 0u);
  EXPECT_EQ(d.alloc_bytes, 0u);
  EXPECT_EQ(d.free_bytes, 0u);
}

TEST(AllocGuard, CountersArePerThread) {
  AllocPhaseScope phase("main");
  AllocCounters before = phase.delta();
  AllocCounters worker_delta;
  std::thread worker([&] {
    AllocPhaseScope wphase("worker");
    std::vector<std::unique_ptr<int>> owned;
    for (int i = 0; i < 64; ++i) owned.push_back(std::make_unique<int>(i));
    worker_delta = wphase.delta();
  });
  worker.join();
  // The worker saw its own traffic...
  EXPECT_GE(worker_delta.allocs, 64u);
  // ...and none of it landed on this thread's counters (std::thread
  // construction itself may allocate *here*, so measure a quiet span
  // after the join instead of asserting an exact zero across it).
  AllocCounters quiet_before = phase.delta();
  AllocCounters quiet_after = phase.delta();
  EXPECT_EQ(quiet_after.allocs - quiet_before.allocs, 0u);
  EXPECT_GE(phase.delta().allocs, before.allocs);
}

#else  // !LMK_ALLOC_GUARD

TEST(AllocGuard, DisabledBuildKeepsCountersAtZero) {
  EXPECT_FALSE(alloc_guard_enabled());
  AllocPhaseScope phase("noop");
  auto p = std::make_unique<int>(7);
  ASSERT_NE(p.get(), nullptr);
  AllocCounters d = phase.delta();
  EXPECT_EQ(d.allocs, 0u);
  EXPECT_EQ(d.frees, 0u);
  EXPECT_EQ(d.alloc_bytes, 0u);
}

#endif  // LMK_ALLOC_GUARD

}  // namespace
}  // namespace lmk
