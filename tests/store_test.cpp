// LocalStore backends: conformance suite shared by all three backends
// (containment, determinism, rebuild semantics), pivot-table exactness
// as a property over random mutation traces (including the migration
// extract_if path), HNSW recall and determinism pins, and the
// platform's rebuild-on-mutation accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/index_platform.hpp"
#include "store/hnsw_store.hpp"
#include "store/local_store.hpp"

namespace lmk {
namespace {

constexpr LocalStoreKind kAllKinds[] = {
    LocalStoreKind::kSorted, LocalStoreKind::kHnsw, LocalStoreKind::kPivot};

LocalStoreOptions options_for(LocalStoreKind kind) {
  LocalStoreOptions opts;
  opts.kind = kind;
  return opts;
}

EntryStore random_store(Rng& rng, std::size_t n, std::size_t dims) {
  EntryStore s;
  for (std::size_t i = 0; i < n; ++i) {
    IndexPoint pt(dims);
    for (double& c : pt) c = rng.uniform();
    s.push_back(static_cast<Id>(rng.next()), i, pt);
  }
  return s;
}

Region random_region(Rng& rng, std::size_t dims, double width) {
  Region r;
  for (std::size_t d = 0; d < dims; ++d) {
    const double lo = rng.uniform() * (1.0 - width);
    r.ranges.push_back(Interval{lo, lo + width});
  }
  return r;
}

bool inside(std::span<const double> pt, const Region& r) {
  for (std::size_t d = 0; d < pt.size(); ++d) {
    if (pt[d] < r.ranges[d].lo || pt[d] > r.ranges[d].hi) return false;
  }
  return true;
}

std::vector<std::uint32_t> brute_range(const EntryStore& s, const Region& r) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (inside(s.point(i), r)) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

double linf(std::span<const double> a, std::span<const double> b) {
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d = std::max(d, std::abs(a[i] - b[i]));
  }
  return d;
}

std::vector<std::uint32_t> brute_knn(const EntryStore& s,
                                     std::span<const double> focus,
                                     std::size_t k) {
  std::vector<std::pair<double, std::uint32_t>> scored;
  for (std::size_t i = 0; i < s.size(); ++i) {
    scored.emplace_back(linf(s.point(i), focus),
                        static_cast<std::uint32_t>(i));
  }
  std::sort(scored.begin(), scored.end());
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < std::min(k, scored.size()); ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

// ---------------------------------------------------------------------
// Conformance: properties every backend must satisfy.

TEST(LocalStoreConformance, RangeReturnsOnlyContainedEntriesNoDuplicates) {
  Rng rng(11);
  EntryStore store = random_store(rng, 500, 4);
  for (LocalStoreKind kind : kAllKinds) {
    auto ls = make_local_store(options_for(kind));
    ls->build(store);
    for (int t = 0; t < 20; ++t) {
      const Region r = random_region(rng, 4, 0.3);
      std::vector<std::uint32_t> out;
      ls->range(store, r, out);
      std::set<std::uint32_t> seen;
      for (std::uint32_t i : out) {
        EXPECT_TRUE(inside(store.point(i), r)) << ls->name();
        EXPECT_TRUE(seen.insert(i).second)
            << ls->name() << " returned entry " << i << " twice";
      }
      if (ls->exact()) {
        const auto truth = brute_range(store, r);
        EXPECT_EQ(seen, std::set<std::uint32_t>(truth.begin(), truth.end()))
            << ls->name();
      }
    }
  }
}

TEST(LocalStoreConformance, RepeatedProbesAndRebuildsAreDeterministic) {
  Rng rng(12);
  EntryStore store = random_store(rng, 300, 3);
  const Region r = random_region(rng, 3, 0.4);
  const IndexPoint focus{0.5, 0.5, 0.5};
  for (LocalStoreKind kind : kAllKinds) {
    auto ls = make_local_store(options_for(kind));
    ls->build(store);
    std::vector<std::uint32_t> range1, range2, knn1, knn2;
    ls->range(store, r, range1);
    ls->range(store, r, range2);
    ls->knn(store, focus, 10, knn1);
    ls->knn(store, focus, 10, knn2);
    EXPECT_EQ(range1, range2) << ls->name();
    EXPECT_EQ(knn1, knn2) << ls->name();
    // A second build from the same rows reproduces the same structure.
    ls->build(store);
    std::vector<std::uint32_t> range3, knn3;
    ls->range(store, r, range3);
    ls->knn(store, focus, 10, knn3);
    EXPECT_EQ(range1, range3) << ls->name();
    EXPECT_EQ(knn1, knn3) << ls->name();
    // A fresh instance with the same options agrees too.
    auto other = make_local_store(options_for(kind));
    other->build(store);
    std::vector<std::uint32_t> range4, knn4;
    other->range(store, r, range4);
    other->knn(store, focus, 10, knn4);
    EXPECT_EQ(range1, range4) << ls->name();
    EXPECT_EQ(knn1, knn4) << ls->name();
  }
}

TEST(LocalStoreConformance, EmptyAndTinyStores) {
  EntryStore empty;
  EntryStore one;
  one.push_back(7, 42, IndexPoint{0.5, 0.5});
  const Region all{{Interval{0, 1}, Interval{0, 1}}};
  const IndexPoint focus{0.4, 0.6};
  for (LocalStoreKind kind : kAllKinds) {
    auto ls = make_local_store(options_for(kind));
    ls->build(empty);
    std::vector<std::uint32_t> out;
    EXPECT_EQ(ls->range(empty, all, out), 0u) << ls->name();
    EXPECT_TRUE(out.empty()) << ls->name();
    EXPECT_EQ(ls->knn(empty, focus, 5, out), 0u) << ls->name();
    EXPECT_TRUE(out.empty()) << ls->name();

    ls->build(one);
    out.clear();
    ls->range(one, all, out);
    EXPECT_EQ(out, std::vector<std::uint32_t>{0}) << ls->name();
    out.clear();
    ls->knn(one, focus, 5, out);
    EXPECT_EQ(out, std::vector<std::uint32_t>{0}) << ls->name();
  }
}

TEST(LocalStoreConformance, MemoryBytesReflectsBuiltStructure) {
  Rng rng(13);
  EntryStore store = random_store(rng, 400, 5);
  for (LocalStoreKind kind : kAllKinds) {
    auto ls = make_local_store(options_for(kind));
    ls->build(store);
    EXPECT_GT(ls->memory_bytes(), 0u) << ls->name();
  }
}

TEST(LocalStoreConformance, ExactBackendsMatchBruteForceKnn) {
  Rng rng(14);
  EntryStore store = random_store(rng, 600, 3);
  for (LocalStoreKind kind : kAllKinds) {
    auto ls = make_local_store(options_for(kind));
    if (!ls->exact()) continue;
    ls->build(store);
    for (int t = 0; t < 10; ++t) {
      IndexPoint focus{rng.uniform(), rng.uniform(), rng.uniform()};
      std::vector<std::uint32_t> out;
      ls->knn(store, focus, 10, out);
      EXPECT_EQ(out, brute_knn(store, focus, 10)) << ls->name();
    }
  }
}

// ---------------------------------------------------------------------
// Pivot table: exactness as a property over random mutation traces,
// including the extract_if migration path the platform uses.

TEST(PivotStoreProperty, ExactUnderRandomMutationTraces) {
  Rng rng(21);
  EntryStore store;
  EntryStore migrated;  // extract_if destination (the "new owner")
  auto pivot = make_local_store(options_for(LocalStoreKind::kPivot));
  std::uint64_t next_object = 0;
  for (int step = 0; step < 40; ++step) {
    // A burst of mutations, shaped like platform traffic: mostly
    // inserts, occasional deletes, periodic key-predicate migrations.
    const int burst = 1 + static_cast<int>(rng.below(30));
    for (int b = 0; b < burst; ++b) {
      const double op = rng.uniform();
      if (op < 0.70 || store.empty()) {
        IndexPoint pt{rng.uniform(), rng.uniform(), rng.uniform()};
        store.push_back(static_cast<Id>(rng.next()), next_object++, pt);
      } else if (op < 0.85) {
        store.erase_at(rng.below(store.size()));
      } else {
        const std::size_t i = rng.below(store.size());
        EXPECT_TRUE(store.erase_first(store.object(i), store.key(i)));
      }
    }
    if (step % 7 == 3 && !store.empty()) {
      // Migration: peel off a key range, exactly like ownership
      // transfer, and occasionally merge it back.
      const Id split = static_cast<Id>(rng.next());
      store.extract_if([split](Id k) { return k < split; }, migrated);
      if (rng.uniform() < 0.5) store.append_moved(migrated);
    }
    // Rebuild-on-mutation, then exactness against brute force.
    pivot->build(store);
    for (int q = 0; q < 5; ++q) {
      const Region r = random_region(rng, 3, 0.25 + 0.5 * rng.uniform());
      std::vector<std::uint32_t> got;
      pivot->range(store, r, got);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, brute_range(store, r)) << "step " << step;
      IndexPoint focus{rng.uniform(), rng.uniform(), rng.uniform()};
      std::vector<std::uint32_t> knn_got;
      pivot->knn(store, focus, 5, knn_got);
      EXPECT_EQ(knn_got, brute_knn(store, focus, 5)) << "step " << step;
    }
  }
}

TEST(PivotStoreProperty, PrunesAgainstFullScan) {
  Rng rng(22);
  // Clustered data and selective boxes: the triangle-inequality bound
  // must skip most entries (this is the backend's whole point).
  EntryStore store;
  for (std::size_t i = 0; i < 2000; ++i) {
    const double cx = (i % 4) * 0.25 + 0.1;
    IndexPoint pt{cx + 0.02 * rng.uniform(), cx + 0.02 * rng.uniform()};
    store.push_back(static_cast<Id>(rng.next()), i, pt);
  }
  auto pivot = make_local_store(options_for(LocalStoreKind::kPivot));
  pivot->build(store);
  std::vector<std::uint32_t> out;
  const std::size_t scanned =
      pivot->range(store, Region{{Interval{0.1, 0.13}, Interval{0.1, 0.13}}},
                   out);
  EXPECT_LT(scanned, store.size() / 2);
  EXPECT_FALSE(out.empty());
}

// ---------------------------------------------------------------------
// HNSW: determinism pins and recall floor.

TEST(HnswStoreTest, LevelIsPureFunctionOfSeedAndObject) {
  LocalStoreOptions opts = options_for(LocalStoreKind::kHnsw);
  HnswStore a(opts), b(opts);
  Rng rng(31);
  int top = 0;
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t object = rng.next();
    // Same (seed, object) -> same level, on any instance: the pin that
    // keeps a migrated entry at its level on the new owner.
    EXPECT_EQ(a.level_for_object(object), b.level_for_object(object));
    top = std::max(top, a.level_for_object(object));
  }
  EXPECT_GE(top, 1);  // the distribution actually uses upper layers
  LocalStoreOptions reseeded = opts;
  reseeded.seed ^= 0x1234567;
  HnswStore c(reseeded);
  int differ = 0;
  Rng rng2(31);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t object = rng2.next();
    differ += (a.level_for_object(object) != c.level_for_object(object));
  }
  EXPECT_GT(differ, 0);  // the seed genuinely participates
}

TEST(HnswStoreTest, KnnRecallFloorOnClusteredData) {
  Rng rng(32);
  EntryStore store;
  // Overlapping clusters (deviation larger than spacing), the regime
  // landmark contraction produces. Hard-separated clusters stress
  // greedy traversal across the connectivity bridges instead and are
  // covered by the reachability test below plus the ablation bench's
  // recall metric.
  for (std::size_t i = 0; i < 2000; ++i) {
    const std::size_t c = rng.below(8);
    IndexPoint pt(6);
    for (std::size_t d = 0; d < 6; ++d) {
      pt[d] = 0.1 + 0.1 * static_cast<double>(c) + 0.25 * rng.uniform();
    }
    store.push_back(static_cast<Id>(rng.next()), i, pt);
  }
  LocalStoreOptions opts = options_for(LocalStoreKind::kHnsw);
  opts.hnsw_m = 8;
  opts.hnsw_ef_construction = 128;
  opts.hnsw_ef_search = 64;
  auto hnsw = make_local_store(opts);
  hnsw->build(store);
  double hit = 0, total = 0;
  for (int q = 0; q < 50; ++q) {
    IndexPoint focus(6);
    const std::size_t c = rng.below(8);
    for (std::size_t d = 0; d < 6; ++d) {
      focus[d] = 0.1 + 0.1 * static_cast<double>(c) + 0.25 * rng.uniform();
    }
    std::vector<std::uint32_t> got;
    hnsw->knn(store, focus, 10, got);
    const auto truth = brute_knn(store, focus, 10);
    for (std::uint32_t i : got) {
      hit += std::count(truth.begin(), truth.end(), i) > 0 ? 1.0 : 0.0;
    }
    total += static_cast<double>(truth.size());
  }
  EXPECT_GE(hit / total, 0.95);
}

TEST(HnswStoreTest, ReachesEveryEntryAcrossSeparatedClusters) {
  Rng rng(34);
  EntryStore store;
  // Hard-separated clusters: closest-first neighbour selection alone
  // links nothing across the gaps, so this exercises the build-time
  // connectivity repair. An exhaustive probe (k = n, beam = n) must
  // reach every stored entry.
  for (std::size_t i = 0; i < 600; ++i) {
    const std::size_t c = rng.below(6);
    IndexPoint pt(4);
    for (std::size_t d = 0; d < 4; ++d) {
      pt[d] = 0.15 * static_cast<double>(c) + 0.02 * rng.uniform();
    }
    store.push_back(static_cast<Id>(rng.next()), i, pt);
  }
  LocalStoreOptions opts = options_for(LocalStoreKind::kHnsw);
  opts.hnsw_m = 4;
  auto hnsw = make_local_store(opts);
  hnsw->build(store);
  std::vector<std::uint32_t> got;
  hnsw->knn(store, IndexPoint{0.5, 0.5, 0.5, 0.5}, store.size(), got);
  EXPECT_EQ(got.size(), store.size());
}

TEST(HnswStoreTest, ResultsOrderedByDistanceThenIndex) {
  Rng rng(33);
  EntryStore store = random_store(rng, 800, 4);
  auto hnsw = make_local_store(options_for(LocalStoreKind::kHnsw));
  hnsw->build(store);
  const IndexPoint focus{0.5, 0.5, 0.5, 0.5};
  std::vector<std::uint32_t> got;
  hnsw->knn(store, focus, 20, got);
  ASSERT_FALSE(got.empty());
  for (std::size_t i = 1; i < got.size(); ++i) {
    const double prev = linf(store.point(got[i - 1]), focus);
    const double cur = linf(store.point(got[i]), focus);
    EXPECT_TRUE(prev < cur || (prev == cur && got[i - 1] < got[i]));
  }
}

// ---------------------------------------------------------------------
// Backend naming / selection plumbing.

TEST(LocalStoreNaming, NamesRoundTripThroughParse) {
  for (LocalStoreKind kind : kAllKinds) {
    LocalStoreKind parsed = LocalStoreKind::kSorted;
    EXPECT_TRUE(parse_local_store_kind(local_store_kind_name(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  LocalStoreKind out = LocalStoreKind::kPivot;
  EXPECT_FALSE(parse_local_store_kind("btree", &out));
  EXPECT_FALSE(parse_local_store_kind("", &out));
  EXPECT_EQ(out, LocalStoreKind::kPivot);  // untouched on failure
}

// ---------------------------------------------------------------------
// Platform accounting: lazy rebuild-on-mutation.

struct Stack {
  Stack(std::size_t hosts, std::uint64_t seed)
      : topo(hosts, 12 * kMillisecond), net(sim, topo) {
    Ring::Options ropts;
    ropts.seed = seed;
    ring = std::make_unique<Ring>(net, ropts);
    for (HostId h = 0; h < hosts; ++h) ring->create_node(h);
    ring->bootstrap();
    platform = std::make_unique<IndexPlatform>(*ring);
  }

  void query_all(std::uint32_t scheme, Region region) {
    platform->region_query(*ring->alive_nodes()[0], scheme, region,
                           IndexPoint(region.dims(), 0.5),
                           ReplyMode::kAllMatches, [](const auto&) {});
    sim.run();
  }

  Simulator sim;
  ConstantLatencyModel topo;
  Network net;
  std::unique_ptr<Ring> ring;
  std::unique_ptr<IndexPlatform> platform;
};

TEST(LocalStorePlatform, RebuildsLazilyOncePerMutatedStore) {
  Stack s(8, 5);
  LocalStoreOptions store_opts;
  store_opts.kind = LocalStoreKind::kPivot;
  auto scheme = s.platform->register_scheme(
      "acct", uniform_boundary(2, 0, 1), false, store_opts);
  Rng rng(6);
  for (int i = 0; i < 64; ++i) {
    s.platform->insert(scheme, static_cast<std::uint64_t>(i),
                       IndexPoint{rng.uniform(), rng.uniform()});
  }
  EXPECT_EQ(s.platform->local_store_stats().rebuilds, 0u);  // lazy
  const Region all{{Interval{0, 1}, Interval{0, 1}}};
  s.query_all(scheme, all);
  const auto after_first = s.platform->local_store_stats();
  EXPECT_GT(after_first.rebuilds, 0u);
  EXPECT_EQ(after_first.rebuilt_entries, 64u);
  // Probing again without mutations must not rebuild anything.
  s.query_all(scheme, all);
  EXPECT_EQ(s.platform->local_store_stats().rebuilds, after_first.rebuilds);
  // One more insert dirties exactly the owner's store.
  s.platform->insert(scheme, 1000, IndexPoint{0.5, 0.5});
  s.query_all(scheme, all);
  const auto after_insert = s.platform->local_store_stats();
  EXPECT_GT(after_insert.rebuilds, after_first.rebuilds);
  EXPECT_GT(after_insert.rebuilt_entries, after_first.rebuilt_entries);
  EXPECT_GT(s.platform->store_bytes(), 0u);
}

}  // namespace
}  // namespace lmk
