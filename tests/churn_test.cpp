// Churn and failure injection: crash failures healed by stabilization,
// queries racing membership changes, retry paths, jitter, and the
// incarnation guards that keep stale messages harmless.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <set>

#include "audit/auditor.hpp"
#include "core/index_platform.hpp"
#include "sim/fault.hpp"

namespace lmk {
namespace {

struct Stack {
  Stack(std::size_t hosts, std::uint64_t seed)
      : topo(hosts, 10 * kMillisecond), net(sim, topo) {
    Ring::Options ropts;
    ropts.seed = seed;
    ring = std::make_unique<Ring>(net, ropts);
    for (HostId h = 0; h < hosts; ++h) ring->create_node(h);
    ring->bootstrap();
    platform = std::make_unique<IndexPlatform>(*ring);
  }

  Simulator sim;
  ConstantLatencyModel topo;
  Network net;
  std::unique_ptr<Ring> ring;
  std::unique_ptr<IndexPlatform> platform;
};

TEST(Churn, CrashLeavesStaleStateOracleStaysConsistent) {
  Stack s(32, 1);
  auto nodes = s.ring->alive_nodes();
  std::sort(nodes.begin(), nodes.end(),
            [](auto* a, auto* b) { return a->id() < b->id(); });
  ChordNode* victim = nodes[7];
  ChordNode* pred = nodes[6];
  Id victim_id = victim->id();
  s.ring->fail(*victim);
  EXPECT_FALSE(victim->alive());
  // No repair happened: the predecessor's successor pointer is stale...
  EXPECT_FALSE(pred->successor_list().front().valid());
  // ...but successor() skips it via the successor list.
  EXPECT_EQ(pred->successor().node, nodes[8]);
  // The oracle already excludes the dead node.
  EXPECT_EQ(s.ring->oracle_successor(victim_id), nodes[8]);
}

TEST(Churn, StabilizationHealsAfterCrashes) {
  Stack s(48, 2);
  Rng rng(3);
  // Crash 6 random nodes, then let the protocol repair itself.
  for (int i = 0; i < 6; ++i) {
    auto alive = s.ring->alive_nodes();
    s.ring->fail(*alive[rng.below(alive.size())]);
  }
  s.ring->run_stabilization(20, 200 * kMillisecond);
  auto nodes = s.ring->alive_nodes();
  std::sort(nodes.begin(), nodes.end(),
            [](auto* a, auto* b) { return a->id() < b->id(); });
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ChordNode* succ = nodes[(i + 1) % nodes.size()];
    EXPECT_EQ(nodes[i]->successor().node, succ) << "node " << i;
    ChordNode* pred = nodes[(i + nodes.size() - 1) % nodes.size()];
    EXPECT_EQ(nodes[i]->predecessor().node, pred) << "node " << i;
  }
}

TEST(Churn, LookupsSurviveCrashesViaSuccessorLists) {
  Stack s(64, 4);
  Rng rng(5);
  for (int i = 0; i < 8; ++i) {
    auto alive = s.ring->alive_nodes();
    s.ring->fail(*alive[rng.below(alive.size())]);
  }
  // Without any stabilization, lookups must still find the right owner
  // by skipping stale entries (successor lists give redundancy).
  auto nodes = s.ring->alive_nodes();
  for (int t = 0; t < 30; ++t) {
    Id key = rng.next();
    ChordNode* expected = s.ring->oracle_successor(key);
    NodeRef got;
    s.ring->find_successor(*nodes[rng.below(nodes.size())], key,
                           [&](NodeRef r, int) { got = r; });
    s.sim.run();
    EXPECT_EQ(got.node, expected) << "key " << key;
  }
}

TEST(Churn, EntriesOnCrashedNodeAreLostOthersSurvive) {
  Stack s(16, 6);
  auto scheme = s.platform->register_scheme("crash",
                                            uniform_boundary(1, 0, 1), false);
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    s.platform->insert(scheme, static_cast<std::uint64_t>(i),
                       IndexPoint{rng.uniform()});
  }
  auto alive = s.ring->alive_nodes();
  ChordNode* victim = alive[3];
  std::size_t lost = s.platform->entries_on(*victim);
  // Count what the victim held, crash it, repair pointers, re-query.
  s.ring->fail(*victim);
  for (ChordNode* n : s.ring->alive_nodes()) s.ring->fix_neighbors(*n);
  s.ring->refresh_all_fingers();
  std::optional<IndexPlatform::QueryOutcome> outcome;
  s.platform->region_query(*s.ring->alive_nodes()[0], scheme,
                           Region{{Interval{0, 1}}}, IndexPoint{0.5},
                           ReplyMode::kAllMatches,
                           [&](const auto& o) { outcome = o; });
  s.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->results.size(), 400u - lost);
}

TEST(Churn, QueryInFlightDuringGracefulLeaveRetriesAndCompletes) {
  Stack s(32, 8);
  auto scheme = s.platform->register_scheme("leave-race",
                                            uniform_boundary(2, 0, 1), false);
  Rng rng(9);
  std::vector<IndexPoint> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back(IndexPoint{rng.uniform(), rng.uniform()});
    s.platform->insert(scheme, static_cast<std::uint64_t>(i), pts.back());
  }
  // Inject the query, then make a node leave gracefully while messages
  // are in flight (its entries drain to the successor first).
  std::optional<IndexPlatform::QueryOutcome> outcome;
  s.platform->region_query(*s.ring->alive_nodes()[0], scheme,
                           Region{{Interval{0, 1}, Interval{0, 1}}},
                           IndexPoint{0.5, 0.5}, ReplyMode::kAllMatches,
                           [&](const auto& o) { outcome = o; });
  s.sim.schedule_after(5 * kMillisecond, [&]() {
    auto alive = s.ring->alive_nodes();
    ChordNode* victim = alive[alive.size() / 2];
    ChordNode* succ = victim->successor().node;
    s.platform->drain_all(*victim, *succ);
    s.ring->leave(*victim);
    s.ring->refresh_all_fingers();
  });
  s.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->complete);
  // Retried subqueries may double-report entries that moved; the result
  // set is deduplicated and must still cover everything.
  std::set<std::uint64_t> got(outcome->results.begin(),
                              outcome->results.end());
  EXPECT_EQ(got.size(), pts.size());
}

TEST(Churn, QueriesDuringRepeatedMigrationsStayComplete) {
  Stack s(32, 10);
  auto scheme = s.platform->register_scheme("mig-race",
                                            uniform_boundary(2, 0, 1), false);
  Rng rng(11);
  std::vector<IndexPoint> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back(IndexPoint{std::clamp(rng.normal(0.7, 0.1), 0.0, 1.0),
                             std::clamp(rng.normal(0.4, 0.1), 0.0, 1.0)});
    s.platform->insert(scheme, static_cast<std::uint64_t>(i), pts.back());
  }
  LoadBalancer::Options bopts;
  bopts.delta = 0;
  bopts.probe_level = 4;
  LoadBalancer balancer(*s.ring, bopts, s.platform->balancer_hooks());

  int completed = 0;
  int total_lost = 0;
  auto nodes_at = [&]() { return s.ring->alive_nodes(); };
  for (int round = 0; round < 5; ++round) {
    // Kick off queries, then run one balancing round while they fly.
    for (int qn = 0; qn < 4; ++qn) {
      auto nodes = nodes_at();
      s.platform->region_query(
          *nodes[rng.below(nodes.size())], scheme,
          Region{{Interval{0.3, 0.9}, Interval{0.1, 0.7}}},
          IndexPoint{0.6, 0.4}, ReplyMode::kAllMatches,
          [&](const IndexPlatform::QueryOutcome& o) {
            ++completed;
            total_lost += o.lost_subqueries;
          });
    }
    s.sim.schedule_after(3 * kMillisecond, [&]() { balancer.run_round(); });
    s.sim.run();
  }
  EXPECT_EQ(completed, 20);
  // Losses are possible when both endpoints churn mid-flight, but the
  // accounting must keep every query completing.
  EXPECT_EQ(s.platform->active_queries(), 0u);
  EXPECT_LE(total_lost, 4);
  s.platform->check_placement_invariant();
}

TEST(Churn, StabilizationRefillsSuccessorLists) {
  Stack s(40, 20);
  Rng rng(21);
  // Crash 5 nodes; survivors' successor lists now contain stale entries.
  for (int i = 0; i < 5; ++i) {
    auto alive = s.ring->alive_nodes();
    s.ring->fail(*alive[rng.below(alive.size())]);
  }
  std::size_t stale = 0;
  for (ChordNode* n : s.ring->alive_nodes()) {
    for (const NodeRef& r : n->successor_list()) {
      if (!r.valid()) ++stale;
    }
  }
  EXPECT_GT(stale, 0u);
  s.ring->run_stabilization(30, 100 * kMillisecond);
  // Lists are repaired: full depth again (ring still > kSuccessors
  // nodes) and every entry valid.
  for (ChordNode* n : s.ring->alive_nodes()) {
    std::size_t valid = 0;
    for (const NodeRef& r : n->successor_list()) {
      if (r.valid()) ++valid;
    }
    EXPECT_GE(valid, ChordNode::kSuccessors / 2)
        << "successor list not refilled";
    EXPECT_TRUE(n->successor().valid() || n->successor().node == n);
  }
}

TEST(Churn, FingerTablesConvergeTowardOracleAfterCrashes) {
  Stack s(32, 22);
  Rng rng(23);
  for (int i = 0; i < 4; ++i) {
    auto alive = s.ring->alive_nodes();
    s.ring->fail(*alive[rng.below(alive.size())]);
  }
  auto stale_fingers = [&]() {
    std::size_t stale = 0;
    for (ChordNode* n : s.ring->alive_nodes()) {
      for (const NodeRef& f : n->finger_table()) {
        if (f.node != nullptr && !f.valid()) ++stale;
      }
    }
    return stale;
  };
  std::size_t before = stale_fingers();
  EXPECT_GT(before, 0u);
  // Enough rounds for each node's round-robin to cover all 64 fingers.
  s.ring->run_stabilization(2 * kIdBits, 50 * kMillisecond);
  std::size_t after = stale_fingers();
  EXPECT_LT(after, before / 4) << "fingers did not heal";
}

TEST(Churn, IncarnationGuardDropsMessagesToRejoinedNode) {
  Stack s(16, 12);
  auto nodes = s.ring->alive_nodes();
  ChordNode* target = nodes[5];
  std::uint32_t inc_before = target->incarnation();
  bool fired = false;
  s.ring->rpc(nodes[0]->host(), *target,
              [&](ChordNode&) { fired = true; });
  // The node leaves and rejoins (new incarnation) before delivery.
  s.ring->leave(*target);
  s.ring->rejoin(*target, target->id() + 12345);
  EXPECT_GT(target->incarnation(), inc_before);
  s.sim.run();
  EXPECT_FALSE(fired);
}

TEST(Churn, JitterPreservesCorrectnessAndChangesTiming) {
  auto run_with = [](double jitter) {
    Stack s(24, 13);
    if (jitter > 0) s.net.set_jitter(jitter, 99);
    auto scheme = s.platform->register_scheme(
        "jit", uniform_boundary(2, 0, 1), false);
    Rng rng(14);
    std::vector<IndexPoint> pts;
    for (int i = 0; i < 200; ++i) {
      pts.push_back(IndexPoint{rng.uniform(), rng.uniform()});
      s.platform->insert(scheme, static_cast<std::uint64_t>(i), pts.back());
    }
    std::optional<IndexPlatform::QueryOutcome> outcome;
    s.platform->region_query(*s.ring->alive_nodes()[0], scheme,
                             Region{{Interval{0, 1}, Interval{0, 1}}},
                             IndexPoint{0.5, 0.5}, ReplyMode::kAllMatches,
                             [&](const auto& o) { outcome = o; });
    s.sim.run();
    return std::pair{outcome->results.size(), outcome->max_latency};
  };
  auto [count0, lat0] = run_with(0.0);
  auto [count1, lat1] = run_with(0.5);
  EXPECT_EQ(count0, 200u);
  EXPECT_EQ(count1, 200u);   // jitter never breaks completeness
  EXPECT_GT(lat1, lat0);     // but delays the slowest reply
}

TEST(Churn, JitterIsDeterministicPerSeed) {
  Simulator sim1, sim2;
  ConstantLatencyModel topo(4, 10 * kMillisecond);
  Network a(sim1, topo), b(sim2, topo);
  a.set_jitter(0.3, 7);
  b.set_jitter(0.3, 7);
  std::vector<SimTime> ta, tb;
  for (int i = 0; i < 10; ++i) {
    a.send(0, 1, 1, [&] { ta.push_back(sim1.now()); });
    b.send(0, 1, 1, [&] { tb.push_back(sim2.now()); });
  }
  sim1.run();
  sim2.run();
  EXPECT_EQ(ta, tb);
}

TEST(Churn, ProtocolJoinsDuringQueriesDoNotCorruptState) {
  Stack s(40, 15);
  // Only 30 of the 40 hosts start in the ring.
  Simulator& sim = s.sim;
  Network net2(sim, s.topo);
  Ring::Options ropts;
  ropts.seed = 16;
  Ring ring(net2, ropts);
  for (HostId h = 0; h < 30; ++h) ring.create_node(h);
  ring.bootstrap();
  IndexPlatform platform(ring);
  auto scheme =
      platform.register_scheme("join-race", uniform_boundary(1, 0, 1), false);
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    platform.insert(scheme, static_cast<std::uint64_t>(i),
                    IndexPoint{rng.uniform()});
  }
  // Join 10 more nodes while queries run.
  ChordNode& gateway = ring.node(0);
  int completed = 0;
  for (HostId h = 30; h < 40; ++h) {
    ChordNode& fresh = ring.create_node(h);
    ring.protocol_join(fresh, gateway, nullptr);
    platform.region_query(*ring.alive_nodes()[0], scheme,
                          Region{{Interval{0.2, 0.8}}}, IndexPoint{0.5},
                          ReplyMode::kAllMatches,
                          [&](const auto&) { ++completed; });
    sim.run();
  }
  EXPECT_EQ(completed, 10);
  // After joins, stabilize and verify queries are exact again (entries
  // may sit on "wrong" nodes until transferred; ownership-correct
  // placement is restored by fix_neighbors + transfer in migration, so
  // here we only require completion and state sanity).
  ring.run_stabilization(15, 100 * kMillisecond);
  EXPECT_EQ(ring.alive_count(), 40u);
}

// Crash-rejoin under message faults, with the PR 3 auditor as the
// oracle: a host crash-stops mid-run while drops, delays and a
// partition window mangle the repair traffic, the host rejoins, and by
// quiescence (faults disarmed, neighbours fixed, replication repaired)
// every invariant — entry conservation and partition tiling included —
// must hold again.
TEST(Churn, CrashRejoinUnderFaultsRecoversByQuiescence) {
  Simulator sim;
  ConstantLatencyModel topo(16, 10 * kMillisecond);
  Network net(sim, topo);
  Ring::Options ropts;
  ropts.seed = 5;
  Ring ring(net, ropts);
  for (HostId h = 0; h < 16; ++h) ring.create_node(h);
  ring.bootstrap();
  IndexPlatform::Options popts;
  popts.replication = 2;  // the crashed host's entries survive on a peer
  IndexPlatform platform(ring, popts);
  const std::uint32_t scheme =
      platform.register_scheme("faulted", uniform_boundary(1, 0, 1), false);
  Rng rng(42);
  for (std::uint64_t i = 0; i < 120; ++i) {
    platform.insert(scheme, i, IndexPoint{rng.uniform()});
  }

  audit::Auditor::Options aopts;
  aopts.fail_fast = false;
  audit::Auditor auditor(ring, &platform, aopts);
  auditor.install_standard_checkers();
  auditor.capture_baseline();

  FaultPlan plan;
  plan.directives = {
      {FaultKind::kDrop, 5, 0, 0, 0, 0, 0},
      {FaultKind::kDrop, 11, 0, 0, 0, 0, 0},
      {FaultKind::kDelay, 17, 30 * kMillisecond, 0, 0, 0, 0},
      {FaultKind::kPartition, 0, 0, 2, 9, 50 * kMillisecond,
       250 * kMillisecond},
      {FaultKind::kCrash, 0, 0, 7, 0, 100 * kMillisecond, 0},
      {FaultKind::kRejoin, 0, 0, 7, 0, 400 * kMillisecond, 0},
  };
  FaultInjector inj(sim, plan);
  net.set_fault_injector(&inj);
  FaultInjector::Hooks hooks;
  hooks.crash = [&ring](HostId h) {
    ChordNode& n = ring.node(h);
    if (n.alive()) ring.fail(n);
  };
  hooks.rejoin = [&ring](HostId h) {
    ChordNode& n = ring.node(h);
    if (!n.alive()) ring.rejoin(n, mix64(n.id() ^ 0x7ea11ull));
  };
  inj.arm(std::move(hooks));

  // Queries across the fault window, origins resolved at fire time.
  int completed = 0;
  for (int q = 0; q < 4; ++q) {
    sim.schedule_at((q + 1) * 120 * kMillisecond, [&] {
      auto alive = ring.alive_nodes();
      platform.region_query(*alive[static_cast<std::size_t>(completed) %
                                   alive.size()],
                            scheme, Region{{Interval{0.1, 0.9}}},
                            IndexPoint{0.5}, ReplyMode::kAllMatches,
                            [&](const auto&) { ++completed; });
    });
  }
  ring.run_stabilization(4, 150 * kMillisecond);
  EXPECT_GE(inj.stats().crashes, 1u);
  EXPECT_GE(inj.stats().rejoins, 1u);
  EXPECT_GE(inj.stats().dropped, 1u);

  // Quiescence: faults off, held messages flushed, routing and
  // replication repaired. The auditor must find nothing.
  inj.disarm();
  sim.run();
  for (ChordNode* n : ring.alive_nodes()) ring.fix_neighbors(*n);
  ring.refresh_all_fingers();
  platform.repair_replication();
  sim.run();
  audit::AuditReport report = auditor.run_once();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(ring.alive_count(), 16u);
  net.set_fault_injector(nullptr);
}

}  // namespace
}  // namespace lmk
