// Unit tests for src/common: RNG, ring arithmetic, bit/prefix helpers,
// statistics, table printing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bits.hpp"
#include "common/ring_math.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace lmk {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng a(7);
  Rng child = a.fork();
  Rng child2 = a.fork();
  EXPECT_NE(child.next(), child2.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowIsBoundedAndCoversRange) {
  Rng rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(6);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.exponential(150.0));
  EXPECT_NEAR(acc.mean(), 150.0, 5.0);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(8);
  auto s = rng.sample_indices(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (std::size_t v : s) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleAllIndices) {
  Rng rng(9);
  auto s = rng.sample_indices(5, 5);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Mix64, InjectiveOnSmallSample) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(HashString, DifferentNamesDiffer) {
  EXPECT_NE(hash_string("index-a", 7), hash_string("index-b", 7));
}

TEST(HashString, Deterministic) {
  EXPECT_EQ(hash_string("docs", 4), hash_string("docs", 4));
}

TEST(Zipf, RankZeroMostFrequent) {
  Rng rng(11);
  ZipfSampler zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(Zipf, AllDrawsInRange) {
  Rng rng(12);
  ZipfSampler zipf(50, 1.2);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf(rng), 50u);
}

// ----- ring arithmetic -----

TEST(RingMath, OpenIntervalBasic) {
  EXPECT_TRUE(in_open(5, 1, 10));
  EXPECT_FALSE(in_open(1, 1, 10));
  EXPECT_FALSE(in_open(10, 1, 10));
  EXPECT_FALSE(in_open(0, 1, 10));
}

TEST(RingMath, OpenIntervalWraps) {
  Id hi = ~Id{0};
  EXPECT_TRUE(in_open(hi, hi - 5, 3));
  EXPECT_TRUE(in_open(1, hi - 5, 3));
  EXPECT_FALSE(in_open(4, hi - 5, 3));
  EXPECT_FALSE(in_open(hi - 6, hi - 5, 3));
}

TEST(RingMath, OpenIntervalDegenerate) {
  // (a, a) is the whole ring except a.
  EXPECT_TRUE(in_open(5, 9, 9));
  EXPECT_FALSE(in_open(9, 9, 9));
}

TEST(RingMath, OpenClosed) {
  EXPECT_TRUE(in_open_closed(10, 1, 10));
  EXPECT_FALSE(in_open_closed(1, 1, 10));
  EXPECT_TRUE(in_open_closed(2, ~Id{0} - 1, 5));
  // Full ring when a == b.
  EXPECT_TRUE(in_open_closed(123, 7, 7));
}

TEST(RingMath, ClosedOpen) {
  EXPECT_TRUE(in_closed_open(1, 1, 10));
  EXPECT_FALSE(in_closed_open(10, 1, 10));
  EXPECT_TRUE(in_closed_open(~Id{0}, ~Id{0} - 1, 5));
  EXPECT_TRUE(in_closed_open(42, 3, 3));
}

TEST(RingMath, ClockwiseDistanceWraps) {
  EXPECT_EQ(clockwise_distance(10, 15), 5u);
  EXPECT_EQ(clockwise_distance(15, 10), ~Id{0} - 4);
}

// ----- bit/prefix helpers -----

TEST(Bits, GetBitMsbFirst) {
  Id x = Id{1} << 63;  // bit 1 set
  EXPECT_EQ(get_bit(x, 1), 1);
  EXPECT_EQ(get_bit(x, 2), 0);
  EXPECT_EQ(get_bit(Id{1}, 64), 1);
  EXPECT_EQ(get_bit(Id{1}, 63), 0);
}

TEST(Bits, SetClearRoundTrip) {
  Id x = 0;
  x = set_bit(x, 3);
  EXPECT_EQ(get_bit(x, 3), 1);
  x = clear_bit(x, 3);
  EXPECT_EQ(x, 0u);
}

TEST(Bits, PrefixMasksLowBits) {
  Id x = ~Id{0};
  EXPECT_EQ(prefix(x, 0), 0u);
  EXPECT_EQ(prefix(x, 64), x);
  EXPECT_EQ(prefix(x, 1), Id{1} << 63);
  EXPECT_EQ(prefix(x, 8), Id{0xFF} << 56);
}

TEST(Bits, SamePrefix) {
  Id a = 0xABCD000000000000ull;
  Id b = 0xABCF000000000000ull;
  EXPECT_TRUE(same_prefix(a, b, 14));
  EXPECT_FALSE(same_prefix(a, b, 16));
  EXPECT_TRUE(same_prefix(a, b, 0));
}

TEST(Bits, CommonPrefixLength) {
  EXPECT_EQ(common_prefix_length(0, 0), 64);
  EXPECT_EQ(common_prefix_length(0, Id{1} << 63), 0);
  Id a = 0xFF00000000000000ull;
  Id b = 0xFF80000000000000ull;
  EXPECT_EQ(common_prefix_length(a, b), 8);
}

TEST(Bits, FirstZeroBit) {
  Id x = ~Id{0};
  EXPECT_EQ(first_zero_bit(x, 1, 64), 0);  // none
  Id y = clear_bit(x, 10);
  EXPECT_EQ(first_zero_bit(y, 1, 64), 10);
  EXPECT_EQ(first_zero_bit(y, 11, 64), 0);
  EXPECT_EQ(first_zero_bit(0, 5, 64), 5);
}

TEST(Bits, PrefixSpan) {
  KeySpan whole = prefix_span(0, 0);
  EXPECT_EQ(whole.lo, 0u);
  EXPECT_EQ(whole.hi, ~Id{0});
  KeySpan leaf = prefix_span(42, 64);
  EXPECT_EQ(leaf.lo, 42u);
  EXPECT_EQ(leaf.hi, 42u);
  KeySpan upper_half = prefix_span(Id{1} << 63, 1);
  EXPECT_EQ(upper_half.lo, Id{1} << 63);
  EXPECT_EQ(upper_half.hi, ~Id{0});
}

// ----- statistics -----

TEST(Stats, AccumulatorBasics) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  acc.add(2);
  acc.add(4);
  acc.add(6);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 6.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 12.0);
  EXPECT_NEAR(acc.variance(), 4.0, 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Stats, PercentileSingleValue) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 95), 7.0);
}

TEST(Stats, GiniEvenIsZero) {
  EXPECT_NEAR(gini({5, 5, 5, 5}), 0.0, 1e-12);
}

TEST(Stats, GiniSkewedApproachesOne) {
  EXPECT_GT(gini({0, 0, 0, 100}), 0.7);
}

TEST(Stats, GiniEmptyAndZeroSafe) {
  EXPECT_EQ(gini({}), 0.0);
  EXPECT_EQ(gini({0, 0}), 0.0);
}

TEST(Stats, PercentileNthMatchesSortingPercentile) {
  Rng rng(91);
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) v.push_back(rng.uniform(0, 1000));
  for (double p : {0.0, 12.5, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    double expect = percentile(v, p);  // copies + fully sorts
    std::vector<double> scratch = v;
    EXPECT_DOUBLE_EQ(percentile_nth(scratch, p), expect) << "p=" << p;
  }
}

TEST(Stats, PercentileNthRepeatedCallsOnSameVector) {
  // The flagship bench extracts p50/p90/p99/p999 from one sample vector
  // with consecutive nth_element calls; earlier partial orderings must
  // not change later answers.
  Rng rng(92);
  std::vector<double> v;
  for (int i = 0; i < 3000; ++i) v.push_back(rng.uniform(-5, 5));
  std::vector<double> copy = v;
  double p50 = percentile_nth(copy, 50);
  double p99 = percentile_nth(copy, 99);
  double p01 = percentile_nth(copy, 1);
  EXPECT_DOUBLE_EQ(p50, percentile(v, 50));
  EXPECT_DOUBLE_EQ(p99, percentile(v, 99));
  EXPECT_DOUBLE_EQ(p01, percentile(v, 1));
}

TEST(Stats, P2QuantileExactBelowFiveObservations) {
  P2Quantile q(0.5);
  q.add(3);
  q.add(1);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);
  q.add(2);
  q.add(10);
  EXPECT_DOUBLE_EQ(q.value(), percentile({3, 1, 2, 10}, 50));
}

TEST(Stats, P2QuantileTracksExactPercentileWithinTolerance) {
  // Exact-vs-streaming agreement on a heavy-ish tailed stream: the P²
  // estimate must land within a few percent of the exact sample
  // quantile (relative to the distribution's scale) while using O(1)
  // memory.
  Rng rng(93);
  for (double quant : {0.5, 0.9, 0.99}) {
    P2Quantile est(quant);
    std::vector<double> all;
    for (int i = 0; i < 20000; ++i) {
      // Lognormal-shaped: exp of a normal — a long right tail like
      // latency data.
      double x = std::exp(rng.normal(0.0, 0.5));
      est.add(x);
      all.push_back(x);
    }
    double exact = percentile_nth(all, quant * 100.0);
    EXPECT_EQ(est.count(), 20000u);
    EXPECT_NEAR(est.value(), exact, 0.05 * exact + 0.01)
        << "quantile " << quant;
  }
}

TEST(Stats, P2QuantileMonotoneStreamConverges) {
  P2Quantile q(0.9);
  for (int i = 1; i <= 1000; ++i) q.add(i);
  EXPECT_NEAR(q.value(), 900.0, 20.0);
}

// ----- table printing -----

TEST(Table, AlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.add_row({"xxxx", "1"});
  std::string s = t.str();
  EXPECT_NE(s.find("a     long_header"), std::string::npos);
  EXPECT_NE(s.find("xxxx  1"), std::string::npos);
}

TEST(Table, CsvFormat) {
  TablePrinter t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "x,y\n1,2\n");
}

TEST(Table, FmtDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace lmk
