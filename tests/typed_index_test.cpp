// Tests for the typed facade's extensions: k-NN by radius expansion,
// landmark re-indexing (the paper's dynamic-dataset future work),
// landmark quality scoring, and Rocchio query expansion.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/typed_index.hpp"
#include "eval/ground_truth.hpp"
#include "ir/expansion.hpp"
#include "landmark/quality.hpp"
#include "landmark/selection.hpp"
#include "workload/corpus.hpp"
#include "workload/synthetic.hpp"

namespace lmk {
namespace {

struct TypedStack {
  TypedStack(std::size_t hosts, std::uint64_t seed)
      : topo(hosts, 10 * kMillisecond), net(sim, topo) {
    Ring::Options ropts;
    ropts.seed = seed;
    ring = std::make_unique<Ring>(net, ropts);
    for (HostId h = 0; h < hosts; ++h) ring->create_node(h);
    ring->bootstrap();
    platform = std::make_unique<IndexPlatform>(*ring);
  }

  Simulator sim;
  ConstantLatencyModel topo;
  Network net;
  std::unique_ptr<Ring> ring;
  std::unique_ptr<IndexPlatform> platform;
};

struct DenseFixture {
  DenseFixture() : stack(32, 21) {
    Rng rng(22);
    for (int i = 0; i < 3000; ++i) {
      points.push_back({rng.uniform(0, 100), rng.uniform(0, 100),
                        rng.uniform(0, 100)});
    }
    auto landmarks = greedy_selection(
        space, std::span<const DenseVector>(points), 4, rng);
    index = std::make_unique<LandmarkIndex<L2Space>>(
        *stack.platform, space,
        LandmarkMapper<L2Space>(space, std::move(landmarks),
                                uniform_boundary(4, 0, 175)),
        "knn-fixture");
    index->bind_objects(
        [this](std::uint64_t id) -> const DenseVector& { return points[id]; });
    for (std::size_t i = 0; i < points.size(); ++i) {
      index->insert(i, points[i]);
    }
  }

  std::vector<std::uint64_t> brute_knn(const DenseVector& q, std::size_t k) {
    return knn_bruteforce(
        points.size(),
        [&](std::size_t j) { return space.distance(q, points[j]); }, k);
  }

  TypedStack stack;
  L2Space space;
  std::vector<DenseVector> points;
  std::unique_ptr<LandmarkIndex<L2Space>> index;
};

TEST(KnnQuery, RadiusExpansionFindsExactNeighbors) {
  DenseFixture f;
  Rng rng(23);
  for (int t = 0; t < 10; ++t) {
    DenseVector q{rng.uniform(0, 100), rng.uniform(0, 100),
                  rng.uniform(0, 100)};
    auto truth = f.brute_knn(q, 10);
    std::optional<LandmarkIndex<L2Space>::KnnOutcome> got;
    f.index->knn_query(*f.stack.ring->alive_nodes()[0], q, 10,
                       /*r0=*/2.0, /*growth=*/2.0, /*r_max=*/200.0,
                       [&](const auto& o) { got = o; });
    f.stack.sim.run();
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(got->exact);
    EXPECT_EQ(got->neighbors, truth) << "query " << t;
    EXPECT_GE(got->rounds, 1);
  }
}

TEST(KnnQuery, StartsSmallAndExpands) {
  DenseFixture f;
  DenseVector q{50, 50, 50};
  std::optional<LandmarkIndex<L2Space>::KnnOutcome> got;
  f.index->knn_query(*f.stack.ring->alive_nodes()[0], q, 10, 0.5, 2.0, 200.0,
                     [&](const auto& o) { got = o; });
  f.stack.sim.run();
  ASSERT_TRUE(got.has_value());
  // r0 = 0.5 cannot possibly hold 10 of 3000 uniform points; multiple
  // rounds were needed.
  EXPECT_GT(got->rounds, 2);
  EXPECT_TRUE(got->exact);
  EXPECT_EQ(got->neighbors, f.brute_knn(q, 10));
  // Totals accumulate across rounds.
  EXPECT_GT(got->totals.query_messages, 0u);
}

TEST(KnnQuery, RMaxCapsSearchAndFlagsInexact) {
  DenseFixture f;
  DenseVector q{50, 50, 50};
  std::optional<LandmarkIndex<L2Space>::KnnOutcome> got;
  // r_max far too small to prove 10 neighbours.
  f.index->knn_query(*f.stack.ring->alive_nodes()[0], q, 10, 0.5, 2.0, 1.0,
                     [&](const auto& o) { got = o; });
  f.stack.sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->exact);
  EXPECT_LE(got->neighbors.size(), 10u);
}

TEST(KnnQuery, KOneIsNearestNeighbor) {
  DenseFixture f;
  Rng rng(24);
  for (int t = 0; t < 5; ++t) {
    DenseVector q{rng.uniform(0, 100), rng.uniform(0, 100),
                  rng.uniform(0, 100)};
    std::optional<LandmarkIndex<L2Space>::KnnOutcome> got;
    f.index->knn_query(*f.stack.ring->alive_nodes()[0], q, 1, 1.0, 2.0,
                       200.0, [&](const auto& o) { got = o; });
    f.stack.sim.run();
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(got->neighbors.size(), 1u);
    EXPECT_EQ(got->neighbors[0], f.brute_knn(q, 1)[0]);
  }
}

TEST(Rebuild, NewLandmarksReindexEverything) {
  DenseFixture f;
  // Re-select landmarks with a different seed and rebuild.
  Rng rng(25);
  auto fresh = kmeans_dense(std::span<const DenseVector>(f.points), 4, rng);
  LandmarkMapper<L2Space> new_mapper(
      f.space, std::move(fresh),
      uniform_boundary(4, 0, 175));
  std::size_t rebuilt = f.index->rebuild(std::move(new_mapper), f.points);
  EXPECT_EQ(rebuilt, f.points.size());
  EXPECT_EQ(f.stack.platform->scheme_entries(f.index->scheme_id()),
            f.points.size());
  f.stack.platform->check_placement_invariant();
  // Queries remain exact under the new mapping.
  DenseVector q{30, 60, 20};
  auto truth = f.brute_knn(q, 10);
  std::optional<LandmarkIndex<L2Space>::KnnOutcome> got;
  f.index->knn_query(*f.stack.ring->alive_nodes()[0], q, 10, 2.0, 2.0, 200.0,
                     [&](const auto& o) { got = o; });
  f.stack.sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->neighbors, truth);
}

TEST(Rebuild, BoundaryFollowsNewMapper) {
  DenseFixture f;
  Rng rng(26);
  auto fresh = greedy_selection(f.space,
                                std::span<const DenseVector>(f.points), 4,
                                rng);
  Boundary tight = boundary_from_sample(
      f.space, std::span<const DenseVector>(fresh),
      std::span<const DenseVector>(f.points).subspan(0, 200));
  LandmarkMapper<L2Space> new_mapper(f.space, std::move(fresh),
                                     std::move(tight));
  Boundary expected = new_mapper.boundary();
  f.index->rebuild(std::move(new_mapper), f.points);
  const Boundary& got =
      f.stack.platform->scheme(f.index->scheme_id()).boundary;
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t d = 0; d < got.size(); ++d) {
    EXPECT_DOUBLE_EQ(got[d].lo, expected[d].lo);
    EXPECT_DOUBLE_EQ(got[d].hi, expected[d].hi);
  }
}

TEST(RemoveTyped, RemovedObjectLeavesKnnResults) {
  DenseFixture f;
  DenseVector q{10, 10, 10};
  auto truth = f.brute_knn(q, 1);
  EXPECT_TRUE(f.index->remove(truth[0], f.points[truth[0]]));
  std::optional<LandmarkIndex<L2Space>::KnnOutcome> got;
  f.index->knn_query(*f.stack.ring->alive_nodes()[0], q, 1, 2.0, 2.0, 200.0,
                     [&](const auto& o) { got = o; });
  f.stack.sim.run();
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->neighbors.size(), 1u);
  EXPECT_NE(got->neighbors[0], truth[0]);
}

// ----- landmark quality (refresh decision rule) -----

TEST(LandmarkQuality, AdoptionDecisionFollowsSelectivityOrdering) {
  // Which selection scheme filters better is data-dependent; the
  // decision rule must simply agree with the measured selectivities and
  // respect the threshold margin.
  Rng rng(27);
  SyntheticConfig cfg;
  cfg.objects = 2000;
  cfg.dims = 30;
  cfg.clusters = 6;
  cfg.deviation = 5;
  auto data = generate_clustered(cfg, rng);
  auto queries = generate_queries(cfg, data, 20, rng);
  L2Space space;
  double max_dist = max_theoretical_distance(cfg);
  auto greedy = greedy_selection(
      space, std::span<const DenseVector>(data.points), 6, rng);
  auto kmeans =
      kmeans_dense(std::span<const DenseVector>(data.points), 6, rng);
  LandmarkMapper<L2Space> g(space, greedy, uniform_boundary(6, 0, max_dist));
  LandmarkMapper<L2Space> m(space, kmeans, uniform_boundary(6, 0, max_dist));
  double radius = 0.05 * max_dist;
  auto sample = std::span<const DenseVector>(data.points);
  auto probes = std::span<const DenseVector>(queries);
  double sg = filter_selectivity(g, sample, probes, radius);
  double sm = filter_selectivity(m, sample, probes, radius);
  EXPECT_GT(sg, 0.0);
  EXPECT_GT(sm, 0.0);
  const LandmarkMapper<L2Space>& better = sm < sg ? m : g;
  const LandmarkMapper<L2Space>& worse = sm < sg ? g : m;
  double ratio = std::min(sm, sg) / std::max(sm, sg);
  if (ratio < 0.95) {  // a clear winner exists
    EXPECT_TRUE(
        should_adopt_landmarks(worse, better, sample, probes, radius, 0.05));
    EXPECT_FALSE(
        should_adopt_landmarks(better, worse, sample, probes, radius, 0.05));
  }
  // A huge threshold always rejects the switch.
  EXPECT_FALSE(
      should_adopt_landmarks(worse, better, sample, probes, radius, 0.999));
}

TEST(LandmarkQuality, DegenerateLandmarksFilterWorst) {
  // k copies of one landmark give a rank-1 index space: every dimension
  // is identical, so the filter is as weak as a single landmark and
  // must be no better than a dispersed greedy set.
  Rng rng(30);
  L2Space space;
  std::vector<DenseVector> sample;
  for (int i = 0; i < 500; ++i) {
    sample.push_back({rng.uniform(0, 10), rng.uniform(0, 10),
                      rng.uniform(0, 10)});
  }
  std::vector<DenseVector> probes(sample.begin(), sample.begin() + 10);
  auto greedy = greedy_selection(
      space, std::span<const DenseVector>(sample), 4, rng);
  std::vector<DenseVector> degenerate(4, sample[0]);
  LandmarkMapper<L2Space> good(space, greedy, uniform_boundary(4, 0, 20));
  LandmarkMapper<L2Space> bad(space, degenerate, uniform_boundary(4, 0, 20));
  double sg = filter_selectivity(good, std::span<const DenseVector>(sample),
                                 std::span<const DenseVector>(probes), 1.0);
  double sb = filter_selectivity(bad, std::span<const DenseVector>(sample),
                                 std::span<const DenseVector>(probes), 1.0);
  EXPECT_LE(sg, sb);
}

TEST(LandmarkQuality, SelectivityBoundsAndMonotonicity) {
  Rng rng(28);
  L2Space space;
  std::vector<DenseVector> sample;
  for (int i = 0; i < 300; ++i) {
    sample.push_back({rng.uniform(0, 10), rng.uniform(0, 10)});
  }
  auto lm = greedy_selection(space, std::span<const DenseVector>(sample), 3,
                             rng);
  LandmarkMapper<L2Space> mapper(space, lm, uniform_boundary(3, 0, 15));
  std::vector<DenseVector> probes(sample.begin(), sample.begin() + 10);
  double s_small = filter_selectivity(
      mapper, std::span<const DenseVector>(sample),
      std::span<const DenseVector>(probes), 0.5);
  double s_large = filter_selectivity(
      mapper, std::span<const DenseVector>(sample),
      std::span<const DenseVector>(probes), 5.0);
  EXPECT_GE(s_small, 0.0);
  EXPECT_LE(s_large, 1.0);
  EXPECT_LE(s_small, s_large);  // larger radius filters less
}

// ----- Rocchio query expansion -----

TEST(Rocchio, NoFeedbackReturnsOriginal) {
  SparseVector q({{1, 2.0}, {5, 1.0}});
  auto out = rocchio_expand(q, {});
  EXPECT_EQ(out.entries().size(), q.entries().size());
}

TEST(Rocchio, AddsStrongFeedbackTerms) {
  SparseVector q({{1, 2.0}});
  std::vector<SparseVector> feedback{
      SparseVector({{1, 1.0}, {7, 3.0}, {9, 0.1}}),
      SparseVector({{7, 2.5}, {8, 0.2}}),
  };
  RocchioOptions opts;
  opts.expansion_terms = 1;  // only the strongest new term survives
  auto out = rocchio_expand(q, feedback, opts);
  bool has7 = false, has8 = false, has9 = false;
  for (const auto& e : out.entries()) {
    if (e.term == 7) has7 = true;
    if (e.term == 8) has8 = true;
    if (e.term == 9) has9 = true;
  }
  EXPECT_TRUE(has7);   // dominant shared feedback term
  EXPECT_FALSE(has8);  // truncated
  EXPECT_FALSE(has9);
  // Original term keeps (alpha + beta*centroid) weight >= alpha*orig.
  EXPECT_GE(out.entries()[0].weight, 2.0);
}

TEST(Rocchio, ExpansionPullsQueryTowardTopic) {
  // Build a corpus; expansion with same-story documents must move the
  // query closer (in angle) to other documents of that story.
  Rng rng(29);
  CorpusConfig cfg;
  cfg.documents = 1500;
  cfg.vocabulary = 20000;
  cfg.topics = 15;
  cfg.stories_per_topic = 10;
  Corpus corpus(cfg, rng);
  AngularSpace ang;
  const auto& docs = corpus.documents();
  auto queries = corpus.make_queries(10, 3.5, rng);
  int improved = 0;
  for (const auto& q : queries) {
    // True top-5 as (idealized) feedback.
    auto truth = knn_bruteforce(
        docs.size(), [&](std::size_t j) { return ang.distance(q, docs[j]); },
        5);
    std::vector<SparseVector> feedback;
    for (auto id : truth) feedback.push_back(docs[id]);
    auto expanded = rocchio_expand(q, feedback);
    // Mean distance to the NEXT 20 true neighbours should shrink.
    auto wider = knn_bruteforce(
        docs.size(), [&](std::size_t j) { return ang.distance(q, docs[j]); },
        25);
    double before = 0, after = 0;
    for (std::size_t i = 5; i < wider.size(); ++i) {
      before += ang.distance(q, docs[wider[i]]);
      after += ang.distance(expanded, docs[wider[i]]);
    }
    if (after < before) ++improved;
  }
  EXPECT_GE(improved, 8);  // expansion helps nearly always
}

}  // namespace
}  // namespace lmk
