// Tests for the flagship memory architecture: the Arena bump allocator
// and RecyclePool (src/common/arena), the struct-of-arrays EntryStore
// (src/core/entry_store) checked for equivalence against the
// vector<IndexEntry> layout it replaced, and the sampled streaming
// oracle (knn_truth_streamed) checked against the materialized
// brute-force batch oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/arena.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/entry_store.hpp"
#include "eval/ground_truth.hpp"
#include "metric/dense.hpp"
#include "workload/synthetic.hpp"

namespace lmk {
namespace {

// ----- Arena -----

TEST(Arena, AllocationsAreAlignedAndCounted) {
  Arena a(1024);
  void* p1 = a.allocate(10, 8);
  void* p2 = a.allocate(1, 1);
  void* p3 = a.allocate(32, 32);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p3) % 32, 0u);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(a.stats().allocations, 3u);
  EXPECT_EQ(a.stats().requested_bytes, 43u);
  EXPECT_GE(a.stats().live_bytes, 43u);  // alignment padding counts
}

TEST(Arena, ResetRecyclesChunksWithoutReleasing) {
  Arena a(4096);
  for (int round = 0; round < 5; ++round) {
    a.reset();
    for (int i = 0; i < 8; ++i) a.allocate(512);
  }
  const ArenaStats& st = a.stats();
  EXPECT_EQ(st.resets, 5u);
  // Steady state: the first round grew the chunk list; later rounds
  // reuse it, so reserved bytes stop growing at the high-water mark.
  EXPECT_GE(st.high_water_bytes, 8u * 512u);
  EXPECT_GE(st.reserved_bytes, st.high_water_bytes);
  std::uint64_t reserved_after = st.reserved_bytes;
  a.reset();
  for (int i = 0; i < 8; ++i) a.allocate(512);
  EXPECT_EQ(a.stats().reserved_bytes, reserved_after);
}

TEST(Arena, HighWaterTracksPeakLiveBytes) {
  Arena a(1 << 16);
  a.allocate(1000);
  a.allocate(3000);
  std::uint64_t peak = a.stats().live_bytes;
  a.reset();
  EXPECT_EQ(a.stats().live_bytes, 0u);
  EXPECT_EQ(a.stats().high_water_bytes, peak);
  a.allocate(100);
  EXPECT_EQ(a.stats().high_water_bytes, peak);  // smaller round: unchanged
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena a(256);
  auto span = a.allocate_span<double>(1000);  // 8000 bytes >> chunk
  EXPECT_EQ(span.size(), 1000u);
  span[0] = 1.5;
  span[999] = 2.5;
  EXPECT_EQ(span[0], 1.5);
  EXPECT_EQ(span[999], 2.5);
  EXPECT_GE(a.stats().reserved_bytes, 8000u);
}

TEST(Arena, ReleaseReturnsMemory) {
  Arena a(1024);
  a.allocate(512);
  EXPECT_GT(a.stats().reserved_bytes, 0u);
  a.release();
  EXPECT_EQ(a.stats().reserved_bytes, 0u);
  EXPECT_EQ(a.stats().live_bytes, 0u);
  // Usable again after release.
  void* p = a.allocate(64);
  EXPECT_NE(p, nullptr);
}

TEST(Arena, SpanWritesDoNotOverlap) {
  Arena a(512);
  auto s1 = a.allocate_span<std::uint64_t>(30);
  auto s2 = a.allocate_span<std::uint64_t>(30);
  for (std::size_t i = 0; i < 30; ++i) s1[i] = i;
  for (std::size_t i = 0; i < 30; ++i) s2[i] = 1000 + i;
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(s1[i], i);
    EXPECT_EQ(s2[i], 1000 + i);
  }
}

// ----- RecyclePool -----

TEST(RecyclePool, ReusesCapacityAndCountsHits) {
  RecyclePool<std::vector<int>> pool;
  std::vector<int> v = pool.acquire();
  EXPECT_EQ(pool.stats().acquires, 1u);
  EXPECT_EQ(pool.stats().hits, 0u);
  v.reserve(1000);
  auto cap = v.capacity();
  pool.release(std::move(v));
  EXPECT_EQ(pool.stats().pooled, 1u);
  std::vector<int> w = pool.acquire();
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_TRUE(w.empty());            // cleared...
  EXPECT_GE(w.capacity(), cap);      // ...but capacity retained
  pool.release(std::move(w));
}

TEST(RecyclePool, HighWaterTracksSimultaneouslyLive) {
  RecyclePool<std::vector<int>> pool;
  auto a = pool.acquire();
  auto b = pool.acquire();
  auto c = pool.acquire();
  EXPECT_EQ(pool.stats().live, 3u);
  EXPECT_EQ(pool.stats().high_water, 3u);
  pool.release(std::move(a));
  pool.release(std::move(b));
  auto d = pool.acquire();
  EXPECT_EQ(pool.stats().high_water, 3u);
  EXPECT_EQ(pool.stats().live, 2u);
  pool.release(std::move(c));
  pool.release(std::move(d));
  EXPECT_EQ(pool.stats().live, 0u);
  // Three distinct buffers ever existed: d was served from the free
  // list (b's capacity), so the park count is 3, not 4.
  EXPECT_EQ(pool.stats().pooled, 3u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

// ----- EntryStore vs the vector<IndexEntry> layout it replaced -----

IndexEntry make_entry(Rng& rng, std::size_t dims) {
  IndexEntry e;
  e.key = rng.next();
  e.object = rng.below(1000);
  e.point.resize(dims);
  for (auto& v : e.point) v = rng.uniform(0, 100);
  return e;
}

void expect_same(const EntryStore& store,
                 const std::vector<IndexEntry>& ref) {
  ASSERT_EQ(store.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(store.key(i), ref[i].key);
    EXPECT_EQ(store.object(i), ref[i].object);
    ASSERT_EQ(store.point(i).size(), ref[i].point.size());
    for (std::size_t d = 0; d < ref[i].point.size(); ++d) {
      EXPECT_EQ(store.point(i)[d], ref[i].point[d]);
    }
  }
}

TEST(EntryStore, MatchesReferenceVectorOnRandomOpTrace) {
  // Replay a recorded random operation trace against both layouts; the
  // SoA store must agree with the vector<IndexEntry> semantics op for
  // op (this is the refactor's equivalence contract).
  const std::size_t dims = 4;
  Rng rng(1234);
  EntryStore store;
  std::vector<IndexEntry> ref;
  for (int op = 0; op < 4000; ++op) {
    switch (rng.below(6)) {
      case 0:
      case 1: {  // push (weighted: stores grow)
        IndexEntry e = make_entry(rng, dims);
        store.push_back(e);
        ref.push_back(e);
        break;
      }
      case 2: {  // erase_at
        if (ref.empty()) break;
        std::size_t i = rng.below(ref.size());
        store.erase_at(i);
        ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case 3: {  // pop_back
        if (ref.empty()) break;
        store.pop_back();
        ref.pop_back();
        break;
      }
      case 4: {  // set_key
        if (ref.empty()) break;
        std::size_t i = rng.below(ref.size());
        Id k = rng.next();
        store.set_key(i, k);
        ref[i].key = k;
        break;
      }
      case 5: {  // erase_first by (object, key)
        if (ref.empty()) break;
        std::size_t i = rng.below(ref.size());
        std::uint64_t obj = ref[i].object;
        Id key = ref[i].key;
        bool got = store.erase_first(obj, key);
        auto it = std::find_if(ref.begin(), ref.end(),
                               [&](const IndexEntry& e) {
                                 return e.object == obj && e.key == key;
                               });
        ASSERT_TRUE(got);
        ref.erase(it);
        break;
      }
    }
  }
  expect_same(store, ref);
}

TEST(EntryStore, ExtractIfKeepsRelativeOrderBothSides) {
  const std::size_t dims = 3;
  Rng rng(77);
  EntryStore store, dst;
  std::vector<IndexEntry> ref, ref_dst;
  for (int i = 0; i < 500; ++i) {
    IndexEntry e = make_entry(rng, dims);
    store.push_back(e);
    ref.push_back(e);
  }
  auto pred = [](Id k) { return (k & 1) == 1; };
  store.extract_if(pred, dst);
  // Reference semantics: stable partition into survivors + extracted.
  std::vector<IndexEntry> survivors;
  for (const IndexEntry& e : ref) {
    if (pred(e.key)) {
      ref_dst.push_back(e);
    } else {
      survivors.push_back(e);
    }
  }
  expect_same(store, survivors);
  expect_same(dst, ref_dst);
}

TEST(EntryStore, AppendAndAppendMoved) {
  const std::size_t dims = 2;
  Rng rng(55);
  EntryStore a, b;
  std::vector<IndexEntry> ra, rb;
  for (int i = 0; i < 40; ++i) {
    IndexEntry e = make_entry(rng, dims);
    a.push_back(e);
    ra.push_back(e);
  }
  for (int i = 0; i < 25; ++i) {
    IndexEntry e = make_entry(rng, dims);
    b.push_back(e);
    rb.push_back(e);
  }
  a.append(b);
  ra.insert(ra.end(), rb.begin(), rb.end());
  expect_same(a, ra);
  expect_same(b, rb);  // append copies; src intact
  EntryStore c;
  c.append_moved(b);
  expect_same(c, rb);
  EXPECT_TRUE(b.empty());
  c.append_moved(a);  // non-empty destination path
  std::vector<IndexEntry> rc = rb;
  rc.insert(rc.end(), ra.begin(), ra.end());
  expect_same(c, rc);
  EXPECT_TRUE(a.empty());
}

TEST(EntryStore, SelfAliasingPushIsSafe) {
  EntryStore s;
  s.push_back(IndexEntry{7, 70, {1.0, 2.0}});
  s.push_back(IndexEntry{8, 80, {3.0, 4.0}});
  // push_back(front()) — the view's span points into s's own buffer,
  // which may reallocate during the push.
  for (int i = 0; i < 50; ++i) s.push_back(s.front());
  EXPECT_EQ(s.size(), 52u);
  for (std::size_t i = 2; i < s.size(); ++i) {
    EXPECT_EQ(s.key(i), 7u);
    EXPECT_EQ(s.object(i), 70u);
    EXPECT_EQ(s.point(i)[0], 1.0);
    EXPECT_EQ(s.point(i)[1], 2.0);
  }
}

TEST(EntryStore, MemoryBytesReflectsCapacity) {
  EntryStore s;
  EXPECT_EQ(s.memory_bytes(), 0u);
  for (int i = 0; i < 100; ++i) {
    s.push_back(IndexEntry{static_cast<Id>(i), 0, {1.0, 2.0, 3.0}});
  }
  // At least the payload: 100 * (key + object + 3 doubles).
  EXPECT_GE(s.memory_bytes(), 100u * (8u + 8u + 24u));
}

// ----- sampled streaming oracle vs materialized batch oracle -----

TEST(StreamedOracle, AgreesWithBruteForceBatch) {
  SyntheticConfig cfg;
  cfg.objects = 3000;
  cfg.dims = 12;
  cfg.clusters = 5;
  SyntheticStream stream(cfg, /*seed=*/99);
  // Materialize the whole stream once for the reference oracle.
  std::vector<DenseVector> dataset;
  dataset.reserve(cfg.objects);
  for (std::uint64_t i = 0; i < cfg.objects; ++i) {
    dataset.push_back(stream.point(i));
  }
  std::vector<DenseVector> queries;
  for (std::uint32_t t = 0; t < 8; ++t) {
    queries.push_back(stream.query_near(t % 5, t));
  }
  L2Space space;
  auto expect = knn_bruteforce_batch(space, dataset, queries, /*k=*/10);

  auto fill = [&](std::uint64_t first, std::span<DenseVector> out) {
    for (std::size_t j = 0; j < out.size(); ++j) {
      out[j].resize(cfg.dims);
      stream.point_into(first + j, out[j]);
    }
  };
  // Exact for any batch size, including one that does not divide n and
  // one larger than n.
  for (std::size_t batch : {64u, 999u, 4096u}) {
    auto got = knn_truth_streamed(space, cfg.objects, fill,
                                  std::span<const DenseVector>(queries),
                                  /*k=*/10, batch);
    EXPECT_EQ(got, expect) << "batch=" << batch;
  }
}

TEST(StreamedOracle, ThreadCountInvariant) {
  SyntheticConfig cfg;
  cfg.objects = 1500;
  cfg.dims = 8;
  SyntheticStream stream(cfg, 7);
  std::vector<DenseVector> queries;
  for (std::uint32_t t = 0; t < 6; ++t) {
    queries.push_back(stream.query_near(t, t));
  }
  L2Space space;
  auto fill = [&](std::uint64_t first, std::span<DenseVector> out) {
    for (std::size_t j = 0; j < out.size(); ++j) {
      out[j].resize(cfg.dims);
      stream.point_into(first + j, out[j]);
    }
  };
  set_threads(1);
  auto t1 = knn_truth_streamed(space, cfg.objects, fill,
                               std::span<const DenseVector>(queries), 10);
  set_threads(4);
  auto t4 = knn_truth_streamed(space, cfg.objects, fill,
                               std::span<const DenseVector>(queries), 10);
  set_threads(0);
  EXPECT_EQ(t1, t4);
}

TEST(StreamedOracle, SampleQueryIndicesSortedDistinctSeeded) {
  auto a = sample_query_indices(1000, 50, 3);
  auto b = sample_query_indices(1000, 50, 3);
  auto c = sample_query_indices(1000, 50, 4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 50u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_TRUE(std::adjacent_find(a.begin(), a.end()) == a.end());
  EXPECT_LT(a.back(), 1000u);
}

}  // namespace
}  // namespace lmk
